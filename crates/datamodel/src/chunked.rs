//! Columnar (SoA) chunked view of the observation cube — the layout the
//! EM hot loops stream at 10M-triple scale.
//!
//! [`ObservationCube`] stores groups and cells as arrays of structs; the
//! inference loops chase `Range` fields and branch per group. At millions
//! of triples that layout leaves throughput on the table: the E-step wants
//! to stream *columns* (`source[]`, `value[]`, `confidence[]`, …) with a
//! fixed reduction order so rustc can keep the loop bodies branch-free and
//! auto-vectorize the float accumulations.
//!
//! [`ChunkedCube`] is that view. It is **derived** from an
//! [`ObservationCube`] (the cube stays the system of record — deltas and
//! retractions still go through [`ObservationCube::apply_delta`] /
//! [`ObservationCube::retract`], and the columnar view is rebuilt from the
//! result), and it is **row-equivalent by construction**: every column is
//! a gather of the cube's existing arrays in the cube's existing order, so
//! an EM step that walks the columns in index order performs bit-for-bit
//! the same float operations as one walking the cube. The
//! `columnar_cube` proptests pin that equivalence down through build,
//! `apply_delta`, and `retract`.
//!
//! The group list is additionally partitioned into fixed-size,
//! **item-aligned chunks** ([`CubeChunk`]) of roughly
//! [`ChunkingConfig::target_cells`] cells: a chunk's scratch is its whole
//! working set, and a sharded executor schedules whole chunks
//! (`kbt_flume::ShardedExecutor::run_ranges`). Because chunks never split
//! an item, per-item reductions stay local to one worker and the merge
//! order stays deterministic. The optional [`ChunkSource`] trait +
//! [`FileChunkStore`] stream chunk payloads from disk, making the layout
//! out-of-core-ready: the resident set is one [`ChunkBuf`] per worker
//! instead of the whole corpus.

use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom};
use std::ops::Range;
use std::path::{Path, PathBuf};

use crate::cube::ObservationCube;
use crate::ids::{ItemId, SourceId};
use crate::wire::{self, WireReader};

/// How the columnar cube is partitioned into chunks.
#[derive(Debug, Clone)]
pub struct ChunkingConfig {
    /// Soft target for the number of cube cells per chunk. A chunk closes
    /// at the first **item boundary** at or past this many cells (items
    /// are never split across chunks, so a single very wide item can
    /// exceed the target). Smaller chunks = finer load balancing and a
    /// smaller per-worker working set; larger chunks = less scheduling
    /// overhead. The default (64 Ki cells ≈ 1 MiB of confidence + id
    /// columns) keeps a chunk's hot data inside the L2 cache of
    /// contemporary cores.
    pub target_cells: usize,
}

impl Default for ChunkingConfig {
    fn default() -> Self {
        Self {
            target_cells: 64 * 1024,
        }
    }
}

/// One item-aligned chunk of the columnar cube: a contiguous range of
/// items, the contiguous range of item-major rows they own, and the cell
/// mass inside — the weight the scheduler balances on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeChunk {
    /// Dense item-id range `[start, end)` the chunk covers.
    pub items: Range<u32>,
    /// The chunk's rows in the item-major (`ig_*`) columns:
    /// `item_offsets[items.start]..item_offsets[items.end]`.
    pub rows: Range<u32>,
    /// Number of cube cells inside the chunk's groups.
    pub cells: u32,
}

/// Columnar (structure-of-arrays) chunked view of an [`ObservationCube`].
///
/// Three families of columns, all gathers of the cube in deterministic
/// order:
///
/// * **group-major** (global group order — the order `cube.groups()`
///   iterates): `group_source` / `group_item` / `group_value` /
///   `cell_offsets`, with the cell payload split into `cell_extractor` /
///   `cell_confidence`;
/// * **item-major** (the order `cube.groups_of_item(d)` yields, for
///   ascending `d`): `ig_group` / `ig_source` / `ig_slot` /
///   `ig_has_cells`, delimited by `item_offsets` — the value E-step
///   streams these; `ig_slot` pre-resolves each group's value to its
///   index in the item's sorted distinct-value list so the hot loop does
///   no searching;
/// * **extractor-major** (per extractor, its cells in global cell order):
///   `ext_offsets` / `ext_group` / `ext_conf` — the extractor M-step
///   reduces each extractor independently while preserving the serial
///   accumulation order.
#[derive(Debug, Clone)]
pub struct ChunkedCube {
    /// Source id of group `g` (global group order).
    pub group_source: Vec<u32>,
    /// Item id of group `g`.
    pub group_item: Vec<u32>,
    /// Value id of group `g`.
    pub group_value: Vec<u32>,
    /// Cell range of group `g`: `cell_offsets[g]..cell_offsets[g+1]`
    /// (length `num_groups + 1`).
    pub cell_offsets: Vec<u32>,
    /// Extractor id of each cell, in the cube's global cell order.
    pub cell_extractor: Vec<u32>,
    /// Extraction confidence of each cell.
    pub cell_confidence: Vec<f64>,

    /// Item-major row ranges: item `d` owns rows
    /// `item_offsets[d]..item_offsets[d+1]` of the `ig_*` columns
    /// (length `num_items + 1`).
    pub item_offsets: Vec<u32>,
    /// Global group index of each item-major row.
    pub ig_group: Vec<u32>,
    /// Source id of each item-major row.
    pub ig_source: Vec<u32>,
    /// Slot of the row's value inside the item's sorted distinct-value
    /// list (`item_values_of`).
    pub ig_slot: Vec<u32>,
    /// 1 when the row's group has at least one cell, else 0. Cell-less
    /// groups can appear after retractions; they claim but never vote.
    pub ig_has_cells: Vec<u8>,

    /// CSR offsets of the per-item sorted distinct values
    /// (length `num_items + 1`).
    pub item_value_offsets: Vec<u32>,
    /// Flat per-item sorted distinct value ids.
    pub item_values: Vec<u32>,

    /// Per-source group ranges over the (source-sorted) group list:
    /// source `w` owns groups `source_offsets[w]..source_offsets[w+1]`
    /// (length `num_sources + 1`).
    pub source_offsets: Vec<u32>,

    /// Per-extractor cell ranges: extractor `e` owns rows
    /// `ext_offsets[e]..ext_offsets[e+1]` of `ext_group` / `ext_conf`
    /// (length `num_extractors + 1`).
    pub ext_offsets: Vec<u32>,
    /// Global group index of each extractor-major cell, in global cell
    /// order per extractor (so per-extractor reductions accumulate in
    /// exactly the serial stream's order).
    pub ext_group: Vec<u32>,
    /// Confidence of each extractor-major cell.
    pub ext_conf: Vec<f64>,

    /// The item-aligned chunk partition.
    pub chunks: Vec<CubeChunk>,
    /// Largest per-item distinct-value count — the slot-accumulator size
    /// a value-layer scratch needs.
    pub max_item_values: usize,
    /// Most item-major rows in any single chunk — sizes per-worker row
    /// scratch.
    pub max_chunk_rows: usize,

    num_sources: u32,
    num_extractors: u32,
    num_values: u32,
}

impl ChunkedCube {
    /// Gather the columnar view from `cube`, partitioned per `cfg`.
    ///
    /// Pure gather: no reordering, no recomputation — every column copies
    /// the cube's arrays in the cube's iteration order, which is what
    /// makes columnar EM kernels bit-for-bit equal to the row-major ones.
    pub fn from_cube(cube: &ObservationCube, cfg: &ChunkingConfig) -> Self {
        let ng = cube.num_groups();
        let ni = cube.num_items();
        let ns = cube.num_sources();
        let ne = cube.num_extractors();

        let mut group_source = Vec::with_capacity(ng);
        let mut group_item = Vec::with_capacity(ng);
        let mut group_value = Vec::with_capacity(ng);
        let mut cell_offsets = Vec::with_capacity(ng + 1);
        cell_offsets.push(0u32);
        let mut cell_extractor = Vec::with_capacity(cube.num_cells());
        let mut cell_confidence = Vec::with_capacity(cube.num_cells());
        for g in cube.groups() {
            group_source.push(g.source.0);
            group_item.push(g.item.0);
            group_value.push(g.value.0);
            for c in cube.cells_of(g) {
                cell_extractor.push(c.extractor.0);
                cell_confidence.push(c.confidence);
            }
            cell_offsets.push(cell_extractor.len() as u32);
        }

        // Per-source offsets: groups are source-sorted and the cube's
        // non-empty ranges tile the group list; sources with no groups
        // (the cube stores them as 0..0) become zero-width at the running
        // offset so the CSR stays monotone.
        let mut source_offsets = Vec::with_capacity(ns + 1);
        source_offsets.push(0u32);
        for w in 0..ns {
            let r = cube.source_groups(SourceId::new(w as u32));
            let prev = *source_offsets.last().unwrap();
            if r.is_empty() {
                source_offsets.push(prev);
            } else {
                debug_assert_eq!(
                    r.start as u32, prev,
                    "source ranges must tile the group list"
                );
                source_offsets.push(r.end as u32);
            }
        }
        debug_assert_eq!(*source_offsets.last().unwrap() as usize, ng);

        // Item-major gather + per-item value CSR + slot resolution.
        let mut item_offsets = Vec::with_capacity(ni + 1);
        item_offsets.push(0u32);
        let mut ig_group = Vec::with_capacity(ng);
        let mut ig_source = Vec::with_capacity(ng);
        let mut ig_slot = Vec::with_capacity(ng);
        let mut ig_has_cells = Vec::with_capacity(ng);
        let mut item_value_offsets = Vec::with_capacity(ni + 1);
        item_value_offsets.push(0u32);
        let mut item_values = Vec::new();
        let mut max_item_values = 0usize;
        for d in 0..ni {
            let vals = cube.observed_values(ItemId::new(d as u32));
            max_item_values = max_item_values.max(vals.len());
            item_values.extend(vals.iter().map(|v| v.0));
            item_value_offsets.push(item_values.len() as u32);
            for g in cube.groups_of_item(ItemId::new(d as u32)) {
                let grp = &cube.groups()[g];
                let slot = vals
                    .binary_search(&grp.value)
                    .expect("group value is an observed value of its item");
                ig_group.push(g as u32);
                ig_source.push(grp.source.0);
                ig_slot.push(slot as u32);
                ig_has_cells.push(u8::from(!cube.cells_of(grp).is_empty()));
            }
            item_offsets.push(ig_group.len() as u32);
        }

        // Extractor-major CSR by counting sort over the global cell
        // stream — each extractor sees its cells as a subsequence of
        // global cell order.
        let mut ext_offsets = vec![0u32; ne + 1];
        for &e in &cell_extractor {
            ext_offsets[e as usize + 1] += 1;
        }
        for e in 0..ne {
            ext_offsets[e + 1] += ext_offsets[e];
        }
        let mut cursor: Vec<u32> = ext_offsets[..ne].to_vec();
        let mut ext_group = vec![0u32; cell_extractor.len()];
        let mut ext_conf = vec![0.0f64; cell_extractor.len()];
        for (g, win) in cell_offsets.windows(2).enumerate() {
            for ci in win[0] as usize..win[1] as usize {
                let e = cell_extractor[ci] as usize;
                let slot = cursor[e] as usize;
                ext_group[slot] = g as u32;
                ext_conf[slot] = cell_confidence[ci];
                cursor[e] += 1;
            }
        }

        // Greedy item-aligned chunking: close a chunk at the first item
        // boundary at or past `target_cells` cells.
        let target = cfg.target_cells.max(1) as u64;
        let mut chunks = Vec::new();
        let mut max_chunk_rows = 0usize;
        let mut start_item = 0usize;
        let mut acc_cells = 0u64;
        for d in 0..ni {
            let row_lo = item_offsets[d] as usize;
            let row_hi = item_offsets[d + 1] as usize;
            let item_cells: u64 = ig_group[row_lo..row_hi]
                .iter()
                .map(|&g| (cell_offsets[g as usize + 1] - cell_offsets[g as usize]) as u64)
                .sum();
            acc_cells += item_cells;
            if acc_cells >= target || d + 1 == ni {
                let rows = item_offsets[start_item]..item_offsets[d + 1];
                max_chunk_rows = max_chunk_rows.max(rows.len());
                chunks.push(CubeChunk {
                    items: start_item as u32..(d + 1) as u32,
                    rows,
                    cells: acc_cells as u32,
                });
                start_item = d + 1;
                acc_cells = 0;
            }
        }

        Self {
            group_source,
            group_item,
            group_value,
            cell_offsets,
            cell_extractor,
            cell_confidence,
            item_offsets,
            ig_group,
            ig_source,
            ig_slot,
            ig_has_cells,
            item_value_offsets,
            item_values,
            source_offsets,
            ext_offsets,
            ext_group,
            ext_conf,
            chunks,
            max_item_values,
            max_chunk_rows,
            num_sources: ns as u32,
            num_extractors: ne as u32,
            num_values: cube.num_values() as u32,
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_source.len()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_extractor.len()
    }

    /// Number of sources in the dense id space.
    pub fn num_sources(&self) -> usize {
        self.num_sources as usize
    }

    /// Number of extractors in the dense id space.
    pub fn num_extractors(&self) -> usize {
        self.num_extractors as usize
    }

    /// Number of items in the dense id space.
    pub fn num_items(&self) -> usize {
        self.item_offsets.len().saturating_sub(1)
    }

    /// Number of values in the dense id space.
    pub fn num_values(&self) -> usize {
        self.num_values as usize
    }

    /// Sorted distinct value ids of item `d`.
    pub fn item_values_of(&self, d: usize) -> &[u32] {
        let lo = self.item_value_offsets[d] as usize;
        let hi = self.item_value_offsets[d + 1] as usize;
        &self.item_values[lo..hi]
    }

    /// Cell range of group `g` in the cell columns.
    pub fn cells_of_group(&self, g: usize) -> Range<usize> {
        self.cell_offsets[g] as usize..self.cell_offsets[g + 1] as usize
    }

    /// Approximate resident size of all columns in bytes (payload only).
    pub fn approx_bytes(&self) -> usize {
        let u32s = self.group_source.len()
            + self.group_item.len()
            + self.group_value.len()
            + self.cell_offsets.len()
            + self.cell_extractor.len()
            + self.item_offsets.len()
            + self.ig_group.len()
            + self.ig_source.len()
            + self.ig_slot.len()
            + self.item_value_offsets.len()
            + self.item_values.len()
            + self.source_offsets.len()
            + self.ext_offsets.len()
            + self.ext_group.len();
        let f64s = self.cell_confidence.len() + self.ext_conf.len();
        u32s * 4 + f64s * 8 + self.ig_has_cells.len() + self.chunks.len() * 24
    }
}

/// One chunk's item-major payload, decoded into reusable buffers — the
/// unit a [`ChunkSource`] yields and an out-of-core E-step worker holds
/// resident (everything the value layer needs for the chunk's items).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkBuf {
    /// Dense item-id range the payload covers.
    pub items: Range<u32>,
    /// Row offsets rebased to the chunk (`item_offsets[0] == 0`, length
    /// `items.len() + 1`).
    pub item_offsets: Vec<u32>,
    /// Value-CSR offsets rebased to the chunk (length `items.len() + 1`).
    pub item_value_offsets: Vec<u32>,
    /// Flat per-item sorted distinct value ids.
    pub item_values: Vec<u32>,
    /// Global group index per row.
    pub ig_group: Vec<u32>,
    /// Source id per row.
    pub ig_source: Vec<u32>,
    /// Value slot per row.
    pub ig_slot: Vec<u32>,
    /// Row has at least one cell.
    pub ig_has_cells: Vec<u8>,
}

/// A source of chunk payloads — in-memory ([`ChunkedCube`]) or streamed
/// from disk ([`FileChunkStore`]). Abstracting the source keeps the
/// E-step code identical whether the corpus is resident or out-of-core.
pub trait ChunkSource {
    /// Number of chunks available.
    fn num_chunks(&self) -> usize;

    /// Load chunk `idx` into `buf` (cleared first, capacity reused).
    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()>;
}

impl ChunkSource for ChunkedCube {
    fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()> {
        let chunk = &self.chunks[idx];
        let items = chunk.items.start as usize..chunk.items.end as usize;
        let rows = chunk.rows.start as usize..chunk.rows.end as usize;
        let row_base = chunk.rows.start;
        let val_base = self.item_value_offsets[items.start];
        let val_range = val_base as usize..self.item_value_offsets[items.end] as usize;

        buf.items = chunk.items.clone();
        buf.item_offsets.clear();
        buf.item_value_offsets.clear();
        for d in items.start..=items.end {
            buf.item_offsets.push(self.item_offsets[d] - row_base);
            buf.item_value_offsets
                .push(self.item_value_offsets[d] - val_base);
        }
        buf.item_values.clear();
        buf.item_values
            .extend_from_slice(&self.item_values[val_range]);
        buf.ig_group.clear();
        buf.ig_group.extend_from_slice(&self.ig_group[rows.clone()]);
        buf.ig_source.clear();
        buf.ig_source
            .extend_from_slice(&self.ig_source[rows.clone()]);
        buf.ig_slot.clear();
        buf.ig_slot.extend_from_slice(&self.ig_slot[rows.clone()]);
        buf.ig_has_cells.clear();
        buf.ig_has_cells.extend_from_slice(&self.ig_has_cells[rows]);
        Ok(())
    }
}

const CHUNK_MAGIC: &[u8; 8] = b"KBTCHNK1";

fn put_u32_slice(buf: &mut Vec<u8>, xs: &[u32]) {
    wire::put_u32(buf, xs.len() as u32);
    for &x in xs {
        wire::put_u32(buf, x);
    }
}

fn read_u32_vec(r: &mut WireReader<'_>, out: &mut Vec<u32>) -> io::Result<()> {
    let n = r.u32().map_err(corrupt)? as usize;
    out.clear();
    out.reserve(n);
    for _ in 0..n {
        out.push(r.u32().map_err(corrupt)?);
    }
    Ok(())
}

fn corrupt<E: std::fmt::Debug>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}"))
}

/// Disk-backed chunk payloads: `KBTCHNK1` header + per-chunk
/// `[len][payload][crc32]` frames (the same framing discipline as the
/// `kbt-store` WAL). [`FileChunkStore::write`] serializes every chunk of
/// a [`ChunkedCube`]; [`FileChunkStore::open`] indexes the frames and
/// serves them through [`ChunkSource`], verifying each frame's CRC on
/// load — a corrupted chunk surfaces as an [`io::Error`] instead of
/// silently wrong EM input.
#[derive(Debug)]
pub struct FileChunkStore {
    path: PathBuf,
    /// Byte offset + length of each chunk's payload frame.
    frames: Vec<(u64, u32)>,
}

impl FileChunkStore {
    /// Serialize every chunk of `cube` to `path` (truncating).
    pub fn write(cube: &ChunkedCube, path: &Path) -> io::Result<()> {
        let mut file_buf: Vec<u8> = Vec::new();
        file_buf.extend_from_slice(CHUNK_MAGIC);
        wire::put_u32(&mut file_buf, cube.chunks.len() as u32);
        let mut payload: Vec<u8> = Vec::new();
        let mut chunk = ChunkBuf::default();
        for idx in 0..cube.chunks.len() {
            cube.load_chunk(idx, &mut chunk)?;
            payload.clear();
            wire::put_u32(&mut payload, chunk.items.start);
            wire::put_u32(&mut payload, chunk.items.end);
            put_u32_slice(&mut payload, &chunk.item_offsets);
            put_u32_slice(&mut payload, &chunk.item_value_offsets);
            put_u32_slice(&mut payload, &chunk.item_values);
            put_u32_slice(&mut payload, &chunk.ig_group);
            put_u32_slice(&mut payload, &chunk.ig_source);
            put_u32_slice(&mut payload, &chunk.ig_slot);
            wire::put_u32(&mut payload, chunk.ig_has_cells.len() as u32);
            file_buf.reserve(payload.len() + chunk.ig_has_cells.len() + 8);
            wire::put_u32(
                &mut file_buf,
                (payload.len() + chunk.ig_has_cells.len()) as u32,
            );
            let frame_start = file_buf.len();
            file_buf.extend_from_slice(&payload);
            file_buf.extend_from_slice(&chunk.ig_has_cells);
            let crc = wire::crc32(&file_buf[frame_start..]);
            wire::put_u32(&mut file_buf, crc);
        }
        fs::write(path, file_buf)
    }

    /// Open a chunk file written by [`Self::write`] and index its frames.
    pub fn open(path: &Path) -> io::Result<Self> {
        let data = fs::read(path)?;
        if data.len() < 12 || &data[..8] != CHUNK_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a KBTCHNK1 chunk file",
            ));
        }
        let mut r = WireReader::new(&data[8..]);
        let count = r.u32().map_err(corrupt)? as usize;
        let mut frames = Vec::with_capacity(count);
        let mut pos = 12u64;
        for _ in 0..count {
            let len = r.u32().map_err(corrupt)?;
            pos += 4;
            frames.push((pos, len));
            r.bytes(len as usize + 4).map_err(corrupt)?;
            pos += len as u64 + 4;
        }
        Ok(Self {
            path: path.to_path_buf(),
            frames,
        })
    }
}

impl ChunkSource for FileChunkStore {
    fn num_chunks(&self) -> usize {
        self.frames.len()
    }

    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()> {
        let (offset, len) = self.frames[idx];
        let mut file = fs::File::open(&self.path)?;
        file.seek(SeekFrom::Start(offset))?;
        let mut frame = vec![0u8; len as usize + 4];
        file.read_exact(&mut frame)?;
        let (payload, crc_bytes) = frame.split_at(len as usize);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if wire::crc32(payload) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk {idx}: CRC mismatch"),
            ));
        }
        let mut r = WireReader::new(payload);
        let start = r.u32().map_err(corrupt)?;
        let end = r.u32().map_err(corrupt)?;
        buf.items = start..end;
        read_u32_vec(&mut r, &mut buf.item_offsets)?;
        read_u32_vec(&mut r, &mut buf.item_value_offsets)?;
        read_u32_vec(&mut r, &mut buf.item_values)?;
        read_u32_vec(&mut r, &mut buf.ig_group)?;
        read_u32_vec(&mut r, &mut buf.ig_source)?;
        read_u32_vec(&mut r, &mut buf.ig_slot)?;
        let n = r.u32().map_err(corrupt)? as usize;
        buf.ig_has_cells.clear();
        buf.ig_has_cells
            .extend_from_slice(r.bytes(n).map_err(corrupt)?);
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk {idx}: trailing bytes"),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::ids::{ExtractorId, ValueId};
    use crate::triple::Observation;

    fn obs(e: u32, w: u32, d: u32, v: u32, c: f64) -> Observation {
        Observation {
            extractor: ExtractorId::new(e),
            source: SourceId::new(w),
            item: ItemId::new(d),
            value: ValueId::new(v),
            confidence: c,
        }
    }

    fn sample_cube() -> ObservationCube {
        let mut b = CubeBuilder::new();
        for w in 0..6u32 {
            for d in 0..9u32 {
                for e in 0..(1 + (w + d) % 3) {
                    b.push(obs(e, w, d, (w + d) % 4, 0.3 + 0.1 * e as f64));
                }
            }
        }
        b.build()
    }

    /// Every column must be a faithful gather of the cube.
    fn assert_matches_cube(cc: &ChunkedCube, cube: &ObservationCube) {
        assert_eq!(cc.num_groups(), cube.num_groups());
        assert_eq!(cc.num_cells(), cube.num_cells());
        assert_eq!(cc.num_sources(), cube.num_sources());
        assert_eq!(cc.num_extractors(), cube.num_extractors());
        assert_eq!(cc.num_items(), cube.num_items());
        assert_eq!(cc.num_values(), cube.num_values());
        for (g, grp) in cube.groups().iter().enumerate() {
            assert_eq!(cc.group_source[g], grp.source.0);
            assert_eq!(cc.group_item[g], grp.item.0);
            assert_eq!(cc.group_value[g], grp.value.0);
            let cells = cube.cells_of(grp);
            let r = cc.cells_of_group(g);
            assert_eq!(r.len(), cells.len());
            for (k, c) in cells.iter().enumerate() {
                assert_eq!(cc.cell_extractor[r.start + k], c.extractor.0);
                assert_eq!(
                    cc.cell_confidence[r.start + k].to_bits(),
                    c.confidence.to_bits()
                );
            }
        }
        for w in 0..cube.num_sources() {
            let r = cube.source_groups(SourceId::new(w as u32));
            if r.is_empty() {
                assert_eq!(cc.source_offsets[w], cc.source_offsets[w + 1]);
            } else {
                assert_eq!(cc.source_offsets[w] as usize, r.start);
                assert_eq!(cc.source_offsets[w + 1] as usize, r.end);
            }
        }
        for d in 0..cube.num_items() {
            let vals = cube.observed_values(ItemId::new(d as u32));
            assert_eq!(
                cc.item_values_of(d),
                vals.iter().map(|v| v.0).collect::<Vec<_>>().as_slice()
            );
            let rows: Vec<usize> = cube.groups_of_item(ItemId::new(d as u32)).collect();
            let lo = cc.item_offsets[d] as usize;
            let hi = cc.item_offsets[d + 1] as usize;
            assert_eq!(hi - lo, rows.len());
            for (k, &g) in rows.iter().enumerate() {
                let grp = &cube.groups()[g];
                assert_eq!(cc.ig_group[lo + k] as usize, g);
                assert_eq!(cc.ig_source[lo + k], grp.source.0);
                assert_eq!(
                    cc.item_values_of(d)[cc.ig_slot[lo + k] as usize],
                    grp.value.0
                );
                assert_eq!(cc.ig_has_cells[lo + k] == 1, !cube.cells_of(grp).is_empty());
            }
        }
        // Extractor CSR covers every cell exactly once, in global order.
        assert_eq!(*cc.ext_offsets.last().unwrap() as usize, cube.num_cells());
        for e in 0..cube.num_extractors() {
            let lo = cc.ext_offsets[e] as usize;
            let hi = cc.ext_offsets[e + 1] as usize;
            let mut prev_cell = None;
            for k in lo..hi {
                let g = cc.ext_group[k] as usize;
                let r = cc.cells_of_group(g);
                let ci = (r.start..r.end)
                    .find(|&ci| {
                        cc.cell_extractor[ci] as usize == e
                            && cc.cell_confidence[ci].to_bits() == cc.ext_conf[k].to_bits()
                    })
                    .expect("ext cell present in its group");
                if let Some(prev) = prev_cell {
                    assert!(ci > prev, "extractor cells must keep global order");
                }
                prev_cell = Some(ci);
            }
        }
    }

    fn assert_chunks_tile(cc: &ChunkedCube) {
        let mut next_item = 0u32;
        let mut next_row = 0u32;
        let mut cells = 0u64;
        for chunk in &cc.chunks {
            assert_eq!(chunk.items.start, next_item);
            assert_eq!(chunk.rows.start, next_row);
            assert_eq!(
                chunk.rows,
                cc.item_offsets[chunk.items.start as usize]
                    ..cc.item_offsets[chunk.items.end as usize]
            );
            next_item = chunk.items.end;
            next_row = chunk.rows.end;
            cells += chunk.cells as u64;
        }
        assert_eq!(next_item as usize, cc.num_items());
        assert_eq!(next_row as usize, cc.ig_group.len());
        assert_eq!(cells as usize, cc.num_cells());
    }

    #[test]
    fn columns_match_cube_at_several_chunk_sizes() {
        let cube = sample_cube();
        for target in [1usize, 7, 64, 1 << 20] {
            let cc = ChunkedCube::from_cube(
                &cube,
                &ChunkingConfig {
                    target_cells: target,
                },
            );
            assert_matches_cube(&cc, &cube);
            assert_chunks_tile(&cc);
        }
    }

    #[test]
    fn chunking_survives_delta_and_retract() {
        let cube = sample_cube();
        let grown = cube.apply_delta(&[obs(7, 9, 12, 5, 0.9), obs(0, 0, 0, 3, 0.2)]);
        let cc = ChunkedCube::from_cube(&grown, &ChunkingConfig { target_cells: 16 });
        assert_matches_cube(&cc, &grown);
        assert_chunks_tile(&cc);

        let shrunk = grown.retract(&[(SourceId::new(0), ItemId::new(0), ValueId::new(0))]);
        let cc = ChunkedCube::from_cube(&shrunk, &ChunkingConfig { target_cells: 16 });
        assert_matches_cube(&cc, &shrunk);
        assert_chunks_tile(&cc);
    }

    #[test]
    fn empty_cube_has_no_chunks() {
        let cc = ChunkedCube::from_cube(&CubeBuilder::new().build(), &ChunkingConfig::default());
        assert_eq!(cc.num_chunks(), 0);
        assert_eq!(cc.num_groups(), 0);
        assert_chunks_tile(&cc);
    }

    #[test]
    fn file_store_round_trips_every_chunk() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        assert!(cc.num_chunks() > 1, "want a multi-chunk test corpus");
        let dir = std::env::temp_dir().join("kbt_chunk_store_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let store = FileChunkStore::open(&path).unwrap();
        assert_eq!(store.num_chunks(), cc.num_chunks());
        let (mut mem, mut disk) = (ChunkBuf::default(), ChunkBuf::default());
        for idx in 0..cc.num_chunks() {
            cc.load_chunk(idx, &mut mem).unwrap();
            store.load_chunk(idx, &mut disk).unwrap();
            assert_eq!(mem, disk, "chunk {idx}");
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_detects_corruption() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let dir = std::env::temp_dir().join("kbt_chunk_store_corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        // The flip lands in some chunk's payload (or its CRC): loading
        // every chunk must surface at least one error, never bad data.
        match FileChunkStore::open(&path) {
            Err(_) => {}
            Ok(store) => {
                let mut buf = ChunkBuf::default();
                let any_err =
                    (0..store.num_chunks()).any(|idx| store.load_chunk(idx, &mut buf).is_err());
                assert!(any_err, "corruption must not pass CRC");
            }
        }
        fs::remove_file(&path).unwrap();
    }
}
