//! Columnar (SoA) chunked view of the observation cube — the layout the
//! EM hot loops stream at 10M-triple scale.
//!
//! [`ObservationCube`] stores groups and cells as arrays of structs; the
//! inference loops chase `Range` fields and branch per group. At millions
//! of triples that layout leaves throughput on the table: the E-step wants
//! to stream *columns* (`source[]`, `value[]`, `confidence[]`, …) with a
//! fixed reduction order so rustc can keep the loop bodies branch-free and
//! auto-vectorize the float accumulations.
//!
//! [`ChunkedCube`] is that view. It is **derived** from an
//! [`ObservationCube`] (the cube stays the system of record — deltas and
//! retractions still go through [`ObservationCube::apply_delta`] /
//! [`ObservationCube::retract`], and the columnar view is rebuilt from the
//! result), and it is **row-equivalent by construction**: every column is
//! a gather of the cube's existing arrays in the cube's existing order, so
//! an EM step that walks the columns in index order performs bit-for-bit
//! the same float operations as one walking the cube. The
//! `columnar_cube` proptests pin that equivalence down through build,
//! `apply_delta`, and `retract`.
//!
//! The group list is additionally partitioned into fixed-size,
//! **item-aligned chunks** ([`CubeChunk`]) of roughly
//! [`ChunkingConfig::target_cells`] cells: a chunk's scratch is its whole
//! working set, and a sharded executor schedules whole chunks
//! (`kbt_flume::ShardedExecutor::run_ranges`). Because chunks never split
//! an item, per-item reductions stay local to one worker and the merge
//! order stays deterministic.
//!
//! # Out-of-core streaming
//!
//! The [`ChunkSource`] trait + [`FileChunkStore`] stream chunk payloads
//! from disk, making the layout out-of-core-ready: the resident set is a
//! handful of leased [`ChunkBuf`]s instead of the whole corpus. The v2
//! file format (`KBTCHNK2`) holds four frame families, each a
//! `[u32 len][payload][u32 crc32]` frame:
//!
//! * a **meta frame** ([`ChunkStoreMeta`]) — the integer skeleton a
//!   streamed fit keeps resident: counts, the item-chunk partition, the
//!   group-frame partition, and the per-source CSRs (group offsets,
//!   distinct-item counts, sorted distinct extractor ids) that the
//!   M-steps and vote tables need without touching any cell payload;
//! * **item frames** — one per [`CubeChunk`], the item-major payload the
//!   value E-step streams (identical payload bytes to the v1 format);
//! * **group frames** ([`GroupBuf`]) — contiguous group ranges with their
//!   cell columns in global cell order, which the correctness E-step,
//!   the alpha update, and a serial extractor M-step pass stream;
//! * an **index frame** + trailing 8-byte offset, so [`FileChunkStore::open`]
//!   reads only the file tail, the index, and the meta frame — never the
//!   whole file (opening a multi-GB store costs O(meta), not O(corpus)).
//!
//! [`ChunkCache`] adds a bounded LRU of decoded buffers over the store:
//! workers lease `Arc` handles, so an eviction never invalidates an
//! in-flight computation — the cache size bounds *residency*, it can
//! never change a result.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::cube::ObservationCube;
use crate::ids::{ItemId, SourceId};
use crate::wire::{self, WireReader};

/// How the columnar cube is partitioned into chunks.
#[derive(Debug, Clone)]
pub struct ChunkingConfig {
    /// Soft target for the number of cube cells per chunk. A chunk closes
    /// at the first **item boundary** at or past this many cells (items
    /// are never split across chunks, so a single very wide item can
    /// exceed the target). Smaller chunks = finer load balancing and a
    /// smaller per-worker working set; larger chunks = less scheduling
    /// overhead. The default (64 Ki cells ≈ 1 MiB of confidence + id
    /// columns) keeps a chunk's hot data inside the L2 cache of
    /// contemporary cores.
    pub target_cells: usize,
}

impl Default for ChunkingConfig {
    fn default() -> Self {
        Self {
            target_cells: 64 * 1024,
        }
    }
}

/// One item-aligned chunk of the columnar cube: a contiguous range of
/// items, the contiguous range of item-major rows they own, and the cell
/// mass inside — the weight the scheduler balances on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeChunk {
    /// Dense item-id range `[start, end)` the chunk covers.
    pub items: Range<u32>,
    /// The chunk's rows in the item-major (`ig_*`) columns:
    /// `item_offsets[items.start]..item_offsets[items.end]`.
    pub rows: Range<u32>,
    /// Number of cube cells inside the chunk's groups.
    pub cells: u32,
}

/// Columnar (structure-of-arrays) chunked view of an [`ObservationCube`].
///
/// Three families of columns, all gathers of the cube in deterministic
/// order:
///
/// * **group-major** (global group order — the order `cube.groups()`
///   iterates): `group_source` / `group_item` / `group_value` /
///   `cell_offsets`, with the cell payload split into `cell_extractor` /
///   `cell_confidence`;
/// * **item-major** (the order `cube.groups_of_item(d)` yields, for
///   ascending `d`): `ig_group` / `ig_source` / `ig_slot` /
///   `ig_has_cells`, delimited by `item_offsets` — the value E-step
///   streams these; `ig_slot` pre-resolves each group's value to its
///   index in the item's sorted distinct-value list so the hot loop does
///   no searching;
/// * **extractor-major** (per extractor, its cells in global cell order):
///   `ext_offsets` / `ext_group` / `ext_conf` — the extractor M-step
///   reduces each extractor independently while preserving the serial
///   accumulation order.
#[derive(Debug, Clone)]
pub struct ChunkedCube {
    /// Source id of group `g` (global group order).
    pub group_source: Vec<u32>,
    /// Item id of group `g`.
    pub group_item: Vec<u32>,
    /// Value id of group `g`.
    pub group_value: Vec<u32>,
    /// Cell range of group `g`: `cell_offsets[g]..cell_offsets[g+1]`
    /// (length `num_groups + 1`).
    pub cell_offsets: Vec<u32>,
    /// Extractor id of each cell, in the cube's global cell order.
    pub cell_extractor: Vec<u32>,
    /// Extraction confidence of each cell.
    pub cell_confidence: Vec<f64>,

    /// Item-major row ranges: item `d` owns rows
    /// `item_offsets[d]..item_offsets[d+1]` of the `ig_*` columns
    /// (length `num_items + 1`).
    pub item_offsets: Vec<u32>,
    /// Global group index of each item-major row.
    pub ig_group: Vec<u32>,
    /// Source id of each item-major row.
    pub ig_source: Vec<u32>,
    /// Slot of the row's value inside the item's sorted distinct-value
    /// list (`item_values_of`).
    pub ig_slot: Vec<u32>,
    /// 1 when the row's group has at least one cell, else 0. Cell-less
    /// groups can appear after retractions; they claim but never vote.
    pub ig_has_cells: Vec<u8>,

    /// CSR offsets of the per-item sorted distinct values
    /// (length `num_items + 1`).
    pub item_value_offsets: Vec<u32>,
    /// Flat per-item sorted distinct value ids.
    pub item_values: Vec<u32>,

    /// Per-source group ranges over the (source-sorted) group list:
    /// source `w` owns groups `source_offsets[w]..source_offsets[w+1]`
    /// (length `num_sources + 1`).
    pub source_offsets: Vec<u32>,

    /// Per-extractor cell ranges: extractor `e` owns rows
    /// `ext_offsets[e]..ext_offsets[e+1]` of `ext_group` / `ext_conf`
    /// (length `num_extractors + 1`).
    pub ext_offsets: Vec<u32>,
    /// Global group index of each extractor-major cell, in global cell
    /// order per extractor (so per-extractor reductions accumulate in
    /// exactly the serial stream's order).
    pub ext_group: Vec<u32>,
    /// Confidence of each extractor-major cell.
    pub ext_conf: Vec<f64>,

    /// The item-aligned chunk partition.
    pub chunks: Vec<CubeChunk>,
    /// Largest per-item distinct-value count — the slot-accumulator size
    /// a value-layer scratch needs.
    pub max_item_values: usize,
    /// Most item-major rows in any single chunk — sizes per-worker row
    /// scratch.
    pub max_chunk_rows: usize,

    num_sources: u32,
    num_extractors: u32,
    num_values: u32,
}

impl ChunkedCube {
    /// Gather the columnar view from `cube`, partitioned per `cfg`.
    ///
    /// Pure gather: no reordering, no recomputation — every column copies
    /// the cube's arrays in the cube's iteration order, which is what
    /// makes columnar EM kernels bit-for-bit equal to the row-major ones.
    pub fn from_cube(cube: &ObservationCube, cfg: &ChunkingConfig) -> Self {
        let ng = cube.num_groups();
        let ni = cube.num_items();
        let ns = cube.num_sources();
        let ne = cube.num_extractors();
        let groups = cube.groups();

        // The gather scatters into positions fixed by prefix sums, so it
        // parallelizes over disjoint output ranges without changing a
        // single byte of the result: every value and every position is
        // independent of the worker count. Small cubes (unit tests,
        // serving deltas) stay on one worker to skip spawn overhead.
        let workers = if ng >= (1 << 15) {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8)
        } else {
            1
        };

        // ---- Prefix passes (serial, O(groups + items)). ----
        let mut cell_offsets = Vec::with_capacity(ng + 1);
        cell_offsets.push(0u32);
        for g in groups {
            cell_offsets.push(cell_offsets.last().unwrap() + cube.cells_of(g).len() as u32);
        }
        let nc = cube.num_cells();

        let mut item_offsets = Vec::with_capacity(ni + 1);
        item_offsets.push(0u32);
        let mut item_value_offsets = Vec::with_capacity(ni + 1);
        item_value_offsets.push(0u32);
        let mut max_item_values = 0usize;
        for d in 0..ni {
            let id = ItemId::new(d as u32);
            let nvals = cube.observed_values(id).len();
            max_item_values = max_item_values.max(nvals);
            item_value_offsets.push(item_value_offsets[d] + nvals as u32);
            item_offsets.push(item_offsets[d] + cube.groups_of_item(id).count() as u32);
        }
        debug_assert_eq!(item_offsets[ni] as usize, ng);

        // ---- Parallel gathers into the preallocated columns. ----
        let mut group_source = vec![0u32; ng];
        let mut group_item = vec![0u32; ng];
        let mut group_value = vec![0u32; ng];
        let mut cell_extractor = vec![0u32; nc];
        let mut cell_confidence = vec![0.0f64; nc];
        let mut ig_group = vec![0u32; ng];
        let mut ig_source = vec![0u32; ng];
        let mut ig_slot = vec![0u32; ng];
        let mut ig_has_cells = vec![0u8; ng];
        let mut item_values = vec![0u32; item_value_offsets[ni] as usize];

        // Group-major copy for the group span starting at `glo`.
        let cell_offsets_ref = &cell_offsets;
        let fill_groups = |glo: usize,
                           gs: &mut [u32],
                           gi: &mut [u32],
                           gv: &mut [u32],
                           ce: &mut [u32],
                           cf: &mut [f64]| {
            let cell_base = cell_offsets_ref[glo] as usize;
            for (k, grp) in groups[glo..glo + gs.len()].iter().enumerate() {
                gs[k] = grp.source.0;
                gi[k] = grp.item.0;
                gv[k] = grp.value.0;
                let at = cell_offsets_ref[glo + k] as usize - cell_base;
                for (j, c) in cube.cells_of(grp).iter().enumerate() {
                    ce[at + j] = c.extractor.0;
                    cf[at + j] = c.confidence;
                }
            }
        };
        // Item-major gather + slot resolution for items `dlo..dlo+n`.
        let item_offsets_ref = &item_offsets;
        let item_value_offsets_ref = &item_value_offsets;
        let fill_items = |dlo: usize,
                          n: usize,
                          igg: &mut [u32],
                          igs: &mut [u32],
                          igl: &mut [u32],
                          igh: &mut [u8],
                          ivals: &mut [u32]| {
            let row_base = item_offsets_ref[dlo] as usize;
            let val_base = item_value_offsets_ref[dlo] as usize;
            for d in dlo..dlo + n {
                let id = ItemId::new(d as u32);
                let vals = cube.observed_values(id);
                let vo = item_value_offsets_ref[d] as usize - val_base;
                for (j, v) in vals.iter().enumerate() {
                    ivals[vo + j] = v.0;
                }
                let r0 = item_offsets_ref[d] as usize - row_base;
                for (r, g) in (r0..).zip(cube.groups_of_item(id)) {
                    let grp = &groups[g];
                    let slot = vals
                        .binary_search(&grp.value)
                        .expect("group value is an observed value of its item");
                    igg[r] = g as u32;
                    igs[r] = grp.source.0;
                    igl[r] = slot as u32;
                    igh[r] = u8::from(!cube.cells_of(grp).is_empty());
                }
            }
        };

        if workers <= 1 {
            fill_groups(
                0,
                &mut group_source,
                &mut group_item,
                &mut group_value,
                &mut cell_extractor,
                &mut cell_confidence,
            );
            fill_items(
                0,
                ni,
                &mut ig_group,
                &mut ig_source,
                &mut ig_slot,
                &mut ig_has_cells,
                &mut item_values,
            );
        } else {
            // Carve each column into per-part windows up front, then let
            // every worker fill its disjoint windows.
            fn carve<'a, T>(slice: &mut &'a mut [T], len: usize) -> &'a mut [T] {
                let s = std::mem::take(slice);
                let (head, tail) = s.split_at_mut(len);
                *slice = tail;
                head
            }
            let part = |n: usize, t: usize| (n * t / workers)..(n * (t + 1) / workers);
            std::thread::scope(|s| {
                let mut gs = group_source.as_mut_slice();
                let mut gi = group_item.as_mut_slice();
                let mut gv = group_value.as_mut_slice();
                let mut ce = cell_extractor.as_mut_slice();
                let mut cf = cell_confidence.as_mut_slice();
                let mut igg = ig_group.as_mut_slice();
                let mut igs = ig_source.as_mut_slice();
                let mut igl = ig_slot.as_mut_slice();
                let mut igh = ig_has_cells.as_mut_slice();
                let mut ivals = item_values.as_mut_slice();
                for t in 0..workers {
                    let gr = part(ng, t);
                    let cells = (cell_offsets[gr.end] - cell_offsets[gr.start]) as usize;
                    let (a, b, c) = (
                        carve(&mut gs, gr.len()),
                        carve(&mut gi, gr.len()),
                        carve(&mut gv, gr.len()),
                    );
                    let (d, e) = (carve(&mut ce, cells), carve(&mut cf, cells));
                    let fg = &fill_groups;
                    s.spawn(move || fg(gr.start, a, b, c, d, e));

                    let ir = part(ni, t);
                    let rows = (item_offsets[ir.end] - item_offsets[ir.start]) as usize;
                    let vals = (item_value_offsets[ir.end] - item_value_offsets[ir.start]) as usize;
                    let (f, g, h) = (
                        carve(&mut igg, rows),
                        carve(&mut igs, rows),
                        carve(&mut igl, rows),
                    );
                    let (i, j) = (carve(&mut igh, rows), carve(&mut ivals, vals));
                    let fi = &fill_items;
                    s.spawn(move || fi(ir.start, ir.len(), f, g, h, i, j));
                }
            });
        }

        // Per-source offsets: groups are source-sorted and the cube's
        // non-empty ranges tile the group list; sources with no groups
        // (the cube stores them as 0..0) become zero-width at the running
        // offset so the CSR stays monotone.
        let mut source_offsets = Vec::with_capacity(ns + 1);
        source_offsets.push(0u32);
        for w in 0..ns {
            let r = cube.source_groups(SourceId::new(w as u32));
            let prev = *source_offsets.last().unwrap();
            if r.is_empty() {
                source_offsets.push(prev);
            } else {
                debug_assert_eq!(
                    r.start as u32, prev,
                    "source ranges must tile the group list"
                );
                source_offsets.push(r.end as u32);
            }
        }
        debug_assert_eq!(*source_offsets.last().unwrap() as usize, ng);

        // Extractor-major CSR by counting sort over the global cell
        // stream — each extractor sees its cells as a subsequence of
        // global cell order.
        let mut ext_offsets = vec![0u32; ne + 1];
        for &e in &cell_extractor {
            ext_offsets[e as usize + 1] += 1;
        }
        for e in 0..ne {
            ext_offsets[e + 1] += ext_offsets[e];
        }
        let mut cursor: Vec<u32> = ext_offsets[..ne].to_vec();
        let mut ext_group = vec![0u32; cell_extractor.len()];
        let mut ext_conf = vec![0.0f64; cell_extractor.len()];
        for (g, win) in cell_offsets.windows(2).enumerate() {
            for ci in win[0] as usize..win[1] as usize {
                let e = cell_extractor[ci] as usize;
                let slot = cursor[e] as usize;
                ext_group[slot] = g as u32;
                ext_conf[slot] = cell_confidence[ci];
                cursor[e] += 1;
            }
        }

        // Greedy item-aligned chunking: close a chunk at the first item
        // boundary at or past `target_cells` cells.
        let target = cfg.target_cells.max(1) as u64;
        let mut chunks = Vec::new();
        let mut max_chunk_rows = 0usize;
        let mut start_item = 0usize;
        let mut acc_cells = 0u64;
        for d in 0..ni {
            let row_lo = item_offsets[d] as usize;
            let row_hi = item_offsets[d + 1] as usize;
            let item_cells: u64 = ig_group[row_lo..row_hi]
                .iter()
                .map(|&g| (cell_offsets[g as usize + 1] - cell_offsets[g as usize]) as u64)
                .sum();
            acc_cells += item_cells;
            if acc_cells >= target || d + 1 == ni {
                let rows = item_offsets[start_item]..item_offsets[d + 1];
                max_chunk_rows = max_chunk_rows.max(rows.len());
                chunks.push(CubeChunk {
                    items: start_item as u32..(d + 1) as u32,
                    rows,
                    cells: acc_cells as u32,
                });
                start_item = d + 1;
                acc_cells = 0;
            }
        }

        Self {
            group_source,
            group_item,
            group_value,
            cell_offsets,
            cell_extractor,
            cell_confidence,
            item_offsets,
            ig_group,
            ig_source,
            ig_slot,
            ig_has_cells,
            item_value_offsets,
            item_values,
            source_offsets,
            ext_offsets,
            ext_group,
            ext_conf,
            chunks,
            max_item_values,
            max_chunk_rows,
            num_sources: ns as u32,
            num_extractors: ne as u32,
            num_values: cube.num_values() as u32,
        }
    }

    /// Number of groups.
    pub fn num_groups(&self) -> usize {
        self.group_source.len()
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cell_extractor.len()
    }

    /// Number of sources in the dense id space.
    pub fn num_sources(&self) -> usize {
        self.num_sources as usize
    }

    /// Number of extractors in the dense id space.
    pub fn num_extractors(&self) -> usize {
        self.num_extractors as usize
    }

    /// Number of items in the dense id space.
    pub fn num_items(&self) -> usize {
        self.item_offsets.len().saturating_sub(1)
    }

    /// Number of values in the dense id space.
    pub fn num_values(&self) -> usize {
        self.num_values as usize
    }

    /// Sorted distinct value ids of item `d`.
    pub fn item_values_of(&self, d: usize) -> &[u32] {
        let lo = self.item_value_offsets[d] as usize;
        let hi = self.item_value_offsets[d + 1] as usize;
        &self.item_values[lo..hi]
    }

    /// Cell range of group `g` in the cell columns.
    pub fn cells_of_group(&self, g: usize) -> Range<usize> {
        self.cell_offsets[g] as usize..self.cell_offsets[g + 1] as usize
    }

    /// Borrowed item-major view of chunk `chunk_idx` — the same data
    /// [`ChunkSource::load_chunk`] copies out, with zero copying. Resident
    /// kernels run on this; streamed kernels run on [`ChunkBuf::view`],
    /// and the two are indistinguishable to the kernel.
    pub fn item_view(&self, chunk_idx: usize) -> ItemView<'_> {
        let chunk = &self.chunks[chunk_idx];
        let ilo = chunk.items.start as usize;
        let ihi = chunk.items.end as usize;
        let rows = chunk.rows.start as usize..chunk.rows.end as usize;
        let val_lo = self.item_value_offsets[ilo] as usize;
        let val_hi = self.item_value_offsets[ihi] as usize;
        ItemView {
            items: chunk.items.clone(),
            row_base: chunk.rows.start,
            val_base: self.item_value_offsets[ilo],
            item_offsets: &self.item_offsets[ilo..=ihi],
            item_value_offsets: &self.item_value_offsets[ilo..=ihi],
            item_values: &self.item_values[val_lo..val_hi],
            ig_group: &self.ig_group[rows.clone()],
            ig_source: &self.ig_source[rows.clone()],
            ig_slot: &self.ig_slot[rows.clone()],
            ig_has_cells: &self.ig_has_cells[rows],
        }
    }

    /// Borrowed group-major view of the group range `groups` — what a
    /// streamed correctness / alpha / extractor pass sees per frame, with
    /// zero copying when the cube is resident.
    pub fn group_view(&self, groups: Range<u32>) -> GroupView<'_> {
        let lo = groups.start as usize;
        let hi = groups.end as usize;
        let cell_lo = self.cell_offsets[lo] as usize;
        let cell_hi = self.cell_offsets[hi] as usize;
        GroupView {
            groups: groups.clone(),
            cell_base: self.cell_offsets[lo],
            group_source: &self.group_source[lo..hi],
            cell_offsets: &self.cell_offsets[lo..=hi],
            cell_extractor: &self.cell_extractor[cell_lo..cell_hi],
            cell_confidence: &self.cell_confidence[cell_lo..cell_hi],
        }
    }

    /// Approximate resident size of all columns in bytes (payload only).
    pub fn approx_bytes(&self) -> usize {
        let u32s = self.group_source.len()
            + self.group_item.len()
            + self.group_value.len()
            + self.cell_offsets.len()
            + self.cell_extractor.len()
            + self.item_offsets.len()
            + self.ig_group.len()
            + self.ig_source.len()
            + self.ig_slot.len()
            + self.item_value_offsets.len()
            + self.item_values.len()
            + self.source_offsets.len()
            + self.ext_offsets.len()
            + self.ext_group.len();
        let f64s = self.cell_confidence.len() + self.ext_conf.len();
        u32s * 4 + f64s * 8 + self.ig_has_cells.len() + self.chunks.len() * 24
    }
}

/// One chunk's item-major payload, decoded into reusable buffers — the
/// unit a [`ChunkSource`] yields and an out-of-core E-step worker holds
/// resident (everything the value layer needs for the chunk's items).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChunkBuf {
    /// Dense item-id range the payload covers.
    pub items: Range<u32>,
    /// Row offsets rebased to the chunk (`item_offsets[0] == 0`, length
    /// `items.len() + 1`).
    pub item_offsets: Vec<u32>,
    /// Value-CSR offsets rebased to the chunk (length `items.len() + 1`).
    pub item_value_offsets: Vec<u32>,
    /// Flat per-item sorted distinct value ids.
    pub item_values: Vec<u32>,
    /// Global group index per row.
    pub ig_group: Vec<u32>,
    /// Source id per row.
    pub ig_source: Vec<u32>,
    /// Value slot per row.
    pub ig_slot: Vec<u32>,
    /// Row has at least one cell.
    pub ig_has_cells: Vec<u8>,
}

impl ChunkBuf {
    /// Borrowed view over the decoded payload — the interface kernels
    /// consume, shared with [`ChunkedCube::item_view`].
    pub fn view(&self) -> ItemView<'_> {
        ItemView {
            items: self.items.clone(),
            row_base: 0,
            val_base: 0,
            item_offsets: &self.item_offsets,
            item_value_offsets: &self.item_value_offsets,
            item_values: &self.item_values,
            ig_group: &self.ig_group,
            ig_source: &self.ig_source,
            ig_slot: &self.ig_slot,
            ig_has_cells: &self.ig_has_cells,
        }
    }
}

/// One group frame's group-major payload: a contiguous group range with
/// its cell columns in global cell order. Streamed correctness / alpha /
/// extractor passes consume these through [`GroupView`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroupBuf {
    /// Global group-index range the frame covers.
    pub groups: Range<u32>,
    /// Source id per group in the range.
    pub group_source: Vec<u32>,
    /// Cell offsets rebased to the frame (`cell_offsets[0] == 0`, length
    /// `groups.len() + 1`).
    pub cell_offsets: Vec<u32>,
    /// Extractor id per cell, in global cell order.
    pub cell_extractor: Vec<u32>,
    /// Confidence per cell.
    pub cell_confidence: Vec<f64>,
}

impl GroupBuf {
    /// Borrowed view over the decoded payload, shared with
    /// [`ChunkedCube::group_view`].
    pub fn view(&self) -> GroupView<'_> {
        GroupView {
            groups: self.groups.clone(),
            cell_base: 0,
            group_source: &self.group_source,
            cell_offsets: &self.cell_offsets,
            cell_extractor: &self.cell_extractor,
            cell_confidence: &self.cell_confidence,
        }
    }
}

/// Borrowed item-major chunk view — the value E-step's kernel input,
/// backed either by resident [`ChunkedCube`] columns
/// ([`ChunkedCube::item_view`]) or a decoded [`ChunkBuf`]
/// ([`ChunkBuf::view`]). Local indices run `0..num_items()`; `rows` /
/// `values` rebase the chunk's offset columns so the kernel never sees
/// the difference between the two backings.
#[derive(Debug, Clone)]
pub struct ItemView<'a> {
    /// Dense item-id range the view covers (`items.start + li` is the
    /// global item id of local item `li`).
    pub items: Range<u32>,
    /// Offset of the view's first row in `item_offsets`' coordinate
    /// space (0 for a decoded [`ChunkBuf`]).
    pub row_base: u32,
    /// Offset of the view's first value in `item_value_offsets`'
    /// coordinate space (0 for a decoded [`ChunkBuf`]).
    pub val_base: u32,
    /// Row offsets (length `num_items() + 1`), in `row_base` coordinates.
    pub item_offsets: &'a [u32],
    /// Value-CSR offsets (length `num_items() + 1`), in `val_base`
    /// coordinates.
    pub item_value_offsets: &'a [u32],
    /// Flat per-item sorted distinct value ids for the view's items.
    pub item_values: &'a [u32],
    /// Global group index per row.
    pub ig_group: &'a [u32],
    /// Source id per row.
    pub ig_source: &'a [u32],
    /// Value slot per row.
    pub ig_slot: &'a [u32],
    /// Row has at least one cell.
    pub ig_has_cells: &'a [u8],
}

impl ItemView<'_> {
    /// Number of items in the view.
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Local row range of local item `li` into the `ig_*` columns.
    pub fn rows(&self, li: usize) -> Range<usize> {
        (self.item_offsets[li] - self.row_base) as usize
            ..(self.item_offsets[li + 1] - self.row_base) as usize
    }

    /// Sorted distinct value ids of local item `li`.
    pub fn values(&self, li: usize) -> &[u32] {
        let lo = (self.item_value_offsets[li] - self.val_base) as usize;
        let hi = (self.item_value_offsets[li + 1] - self.val_base) as usize;
        &self.item_values[lo..hi]
    }
}

/// Borrowed group-major frame view — input to the streamed correctness
/// E-step, the alpha update, and the serial extractor M-step pass. Backed
/// by resident columns ([`ChunkedCube::group_view`]) or a decoded
/// [`GroupBuf`] ([`GroupBuf::view`]); `cells` rebases the offsets so the
/// kernels can't tell the backings apart.
#[derive(Debug, Clone)]
pub struct GroupView<'a> {
    /// Global group-index range the view covers (`groups.start + lg` is
    /// the global group index of local group `lg`).
    pub groups: Range<u32>,
    /// Offset of the view's first cell in `cell_offsets`' coordinate
    /// space (0 for a decoded [`GroupBuf`]).
    pub cell_base: u32,
    /// Source id per group in the range.
    pub group_source: &'a [u32],
    /// Cell offsets (length `num_groups() + 1`), in `cell_base`
    /// coordinates.
    pub cell_offsets: &'a [u32],
    /// Extractor id per cell, in global cell order.
    pub cell_extractor: &'a [u32],
    /// Confidence per cell.
    pub cell_confidence: &'a [f64],
}

impl GroupView<'_> {
    /// Number of groups in the view.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Local cell range of local group `lg` into the cell columns.
    pub fn cells(&self, lg: usize) -> Range<usize> {
        (self.cell_offsets[lg] - self.cell_base) as usize
            ..(self.cell_offsets[lg + 1] - self.cell_base) as usize
    }
}

/// A source of chunk payloads — in-memory ([`ChunkedCube`]) or streamed
/// from disk ([`FileChunkStore`]). Abstracting the source keeps the
/// E-step code identical whether the corpus is resident or out-of-core.
pub trait ChunkSource {
    /// Number of chunks available.
    fn num_chunks(&self) -> usize;

    /// Load chunk `idx` into `buf` (cleared first, capacity reused).
    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()>;
}

impl ChunkSource for ChunkedCube {
    fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()> {
        let chunk = &self.chunks[idx];
        let items = chunk.items.start as usize..chunk.items.end as usize;
        let rows = chunk.rows.start as usize..chunk.rows.end as usize;
        let row_base = chunk.rows.start;
        let val_base = self.item_value_offsets[items.start];
        let val_range = val_base as usize..self.item_value_offsets[items.end] as usize;

        buf.items = chunk.items.clone();
        buf.item_offsets.clear();
        buf.item_value_offsets.clear();
        for d in items.start..=items.end {
            buf.item_offsets.push(self.item_offsets[d] - row_base);
            buf.item_value_offsets
                .push(self.item_value_offsets[d] - val_base);
        }
        buf.item_values.clear();
        buf.item_values
            .extend_from_slice(&self.item_values[val_range]);
        buf.ig_group.clear();
        buf.ig_group.extend_from_slice(&self.ig_group[rows.clone()]);
        buf.ig_source.clear();
        buf.ig_source
            .extend_from_slice(&self.ig_source[rows.clone()]);
        buf.ig_slot.clear();
        buf.ig_slot.extend_from_slice(&self.ig_slot[rows.clone()]);
        buf.ig_has_cells.clear();
        buf.ig_has_cells.extend_from_slice(&self.ig_has_cells[rows]);
        Ok(())
    }
}

const CHUNK_MAGIC: &[u8; 8] = b"KBTCHNK2";

/// Cap on groups per on-disk group frame, so a frame's decoded size stays
/// bounded even for degenerate cell distributions.
const MAX_FRAME_GROUPS: usize = 1 << 20;

fn put_u32_slice(buf: &mut Vec<u8>, xs: &[u32]) {
    wire::put_u32(buf, xs.len() as u32);
    for &x in xs {
        wire::put_u32(buf, x);
    }
}

fn read_u32_vec(r: &mut WireReader<'_>, out: &mut Vec<u32>) -> io::Result<()> {
    let n = r.u32().map_err(corrupt)? as usize;
    out.clear();
    out.reserve(n);
    for _ in 0..n {
        out.push(r.u32().map_err(corrupt)?);
    }
    Ok(())
}

fn corrupt<E: std::fmt::Debug>(e: E) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}"))
}

/// The integer skeleton of a chunk store — everything a streamed fit
/// keeps resident besides the O(groups) float vectors. Holds the counts,
/// both frame partitions, and the per-source CSRs the M-steps, the gamma
/// estimate, and the vote tables need, so no EM stage has to touch a cell
/// payload except through the streamed frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkStoreMeta {
    /// Number of groups in the stored cube.
    pub num_groups: u32,
    /// Number of cells.
    pub num_cells: u32,
    /// Number of items in the dense id space.
    pub num_items: u32,
    /// Number of sources in the dense id space.
    pub num_sources: u32,
    /// Number of extractors in the dense id space.
    pub num_extractors: u32,
    /// Number of values in the dense id space.
    pub num_values: u32,
    /// Largest per-item distinct-value count (slot-accumulator size).
    pub max_item_values: u32,
    /// Most item-major rows in any single item chunk.
    pub max_chunk_rows: u32,
    /// The item-aligned chunk partition (one item frame per entry).
    pub item_chunks: Vec<CubeChunk>,
    /// The group-frame partition: contiguous group ranges tiling
    /// `0..num_groups` (one group frame per entry).
    pub group_frames: Vec<Range<u32>>,
    /// Per-source group ranges (length `num_sources + 1`): source `w`
    /// owns groups `source_offsets[w]..source_offsets[w+1]`.
    pub source_offsets: Vec<u32>,
    /// Distinct items claimed by each source (length `num_sources`) —
    /// the gamma estimate's slot count, precomputed so streamed fits
    /// never need the `group_item` column.
    pub source_item_counts: Vec<u32>,
    /// CSR offsets into `source_ext_ids` (length `num_sources + 1`).
    pub source_ext_offsets: Vec<u32>,
    /// Sorted distinct extractor ids observing each source — the
    /// scoped vote-table rebuild's input, matching
    /// `ObservationCube::extractors_on_source` order.
    pub source_ext_ids: Vec<u32>,
}

impl ChunkStoreMeta {
    /// Derive the metadata (including the group-frame partition) from a
    /// resident columnar cube.
    pub fn from_cube(cube: &ChunkedCube) -> Self {
        let ng = cube.num_groups();
        let ns = cube.num_sources();

        // Per-source distinct-item counts: groups are item-sorted within
        // a source span, so counting runs of `group_item` is exact.
        let mut source_item_counts = Vec::with_capacity(ns);
        let mut source_ext_offsets = Vec::with_capacity(ns + 1);
        source_ext_offsets.push(0u32);
        let mut source_ext_ids = Vec::new();
        let mut ext_scratch: Vec<u32> = Vec::new();
        for w in 0..ns {
            let lo = cube.source_offsets[w] as usize;
            let hi = cube.source_offsets[w + 1] as usize;
            let mut items = 0u32;
            let mut prev = u32::MAX;
            for g in lo..hi {
                let it = cube.group_item[g];
                if it != prev {
                    items += 1;
                    prev = it;
                }
            }
            source_item_counts.push(items);
            let cell_lo = cube.cell_offsets[lo] as usize;
            let cell_hi = cube.cell_offsets[hi] as usize;
            ext_scratch.clear();
            ext_scratch.extend_from_slice(&cube.cell_extractor[cell_lo..cell_hi]);
            ext_scratch.sort_unstable();
            ext_scratch.dedup();
            source_ext_ids.extend_from_slice(&ext_scratch);
            source_ext_offsets.push(source_ext_ids.len() as u32);
        }

        // Group-frame partition: close a frame at ~cells-per-item-chunk
        // cells (so both frame families stream at similar granularity),
        // or at the group-count cap.
        let target = (cube.num_cells() / cube.chunks.len().max(1)).max(1) as u64;
        let mut group_frames = Vec::new();
        let mut start = 0usize;
        let mut acc = 0u64;
        for g in 0..ng {
            acc += (cube.cell_offsets[g + 1] - cube.cell_offsets[g]) as u64;
            if acc >= target || g - start + 1 >= MAX_FRAME_GROUPS || g + 1 == ng {
                group_frames.push(start as u32..(g + 1) as u32);
                start = g + 1;
                acc = 0;
            }
        }

        Self {
            num_groups: ng as u32,
            num_cells: cube.num_cells() as u32,
            num_items: cube.num_items() as u32,
            num_sources: ns as u32,
            num_extractors: cube.num_extractors() as u32,
            num_values: cube.num_values() as u32,
            max_item_values: cube.max_item_values as u32,
            max_chunk_rows: cube.max_chunk_rows as u32,
            item_chunks: cube.chunks.clone(),
            group_frames,
            source_offsets: cube.source_offsets.clone(),
            source_item_counts,
            source_ext_offsets,
            source_ext_ids,
        }
    }

    fn encode(&self) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_u32(&mut p, self.num_groups);
        wire::put_u32(&mut p, self.num_cells);
        wire::put_u32(&mut p, self.num_items);
        wire::put_u32(&mut p, self.num_sources);
        wire::put_u32(&mut p, self.num_extractors);
        wire::put_u32(&mut p, self.num_values);
        wire::put_u32(&mut p, self.max_item_values);
        wire::put_u32(&mut p, self.max_chunk_rows);
        wire::put_u32(&mut p, self.item_chunks.len() as u32);
        for c in &self.item_chunks {
            wire::put_u32(&mut p, c.items.start);
            wire::put_u32(&mut p, c.items.end);
            wire::put_u32(&mut p, c.rows.start);
            wire::put_u32(&mut p, c.rows.end);
            wire::put_u32(&mut p, c.cells);
        }
        wire::put_u32(&mut p, self.group_frames.len() as u32);
        for f in &self.group_frames {
            wire::put_u32(&mut p, f.start);
            wire::put_u32(&mut p, f.end);
        }
        put_u32_slice(&mut p, &self.source_offsets);
        put_u32_slice(&mut p, &self.source_item_counts);
        put_u32_slice(&mut p, &self.source_ext_offsets);
        put_u32_slice(&mut p, &self.source_ext_ids);
        p
    }

    fn decode(payload: &[u8]) -> io::Result<Self> {
        let mut r = WireReader::new(payload);
        let num_groups = r.u32().map_err(corrupt)?;
        let num_cells = r.u32().map_err(corrupt)?;
        let num_items = r.u32().map_err(corrupt)?;
        let num_sources = r.u32().map_err(corrupt)?;
        let num_extractors = r.u32().map_err(corrupt)?;
        let num_values = r.u32().map_err(corrupt)?;
        let max_item_values = r.u32().map_err(corrupt)?;
        let max_chunk_rows = r.u32().map_err(corrupt)?;
        let n_chunks = r.u32().map_err(corrupt)? as usize;
        let mut item_chunks = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let is = r.u32().map_err(corrupt)?;
            let ie = r.u32().map_err(corrupt)?;
            let rs = r.u32().map_err(corrupt)?;
            let re = r.u32().map_err(corrupt)?;
            let cells = r.u32().map_err(corrupt)?;
            item_chunks.push(CubeChunk {
                items: is..ie,
                rows: rs..re,
                cells,
            });
        }
        let n_frames = r.u32().map_err(corrupt)? as usize;
        let mut group_frames = Vec::with_capacity(n_frames);
        for _ in 0..n_frames {
            let fs = r.u32().map_err(corrupt)?;
            let fe = r.u32().map_err(corrupt)?;
            group_frames.push(fs..fe);
        }
        let mut source_offsets = Vec::new();
        read_u32_vec(&mut r, &mut source_offsets)?;
        let mut source_item_counts = Vec::new();
        read_u32_vec(&mut r, &mut source_item_counts)?;
        let mut source_ext_offsets = Vec::new();
        read_u32_vec(&mut r, &mut source_ext_offsets)?;
        let mut source_ext_ids = Vec::new();
        read_u32_vec(&mut r, &mut source_ext_ids)?;
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "meta frame: trailing bytes",
            ));
        }
        let ns = num_sources as usize;
        let meta_ok = source_offsets.len() == ns + 1
            && source_offsets.first() == Some(&0)
            && source_offsets.last() == Some(&num_groups)
            && source_item_counts.len() == ns
            && source_ext_offsets.len() == ns + 1
            && source_ext_offsets.last().copied() == Some(source_ext_ids.len() as u32)
            && group_frames
                .first()
                .map_or(num_groups == 0, |f| f.start == 0)
            && group_frames
                .last()
                .map_or(num_groups == 0, |f| f.end == num_groups)
            && group_frames.windows(2).all(|w| w[0].end == w[1].start);
        if !meta_ok {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "meta frame: inconsistent CSR shapes",
            ));
        }
        Ok(Self {
            num_groups,
            num_cells,
            num_items,
            num_sources,
            num_extractors,
            num_values,
            max_item_values,
            max_chunk_rows,
            item_chunks,
            group_frames,
            source_offsets,
            source_item_counts,
            source_ext_offsets,
            source_ext_ids,
        })
    }
}

/// Append one `[u32 len][payload][u32 crc32]` frame at `*pos`; returns
/// the payload's byte offset and length.
fn write_frame(
    w: &mut io::BufWriter<fs::File>,
    pos: &mut u64,
    payload: &[u8],
) -> io::Result<(u64, u32)> {
    let len = payload.len() as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&wire::crc32(payload).to_le_bytes())?;
    let payload_off = *pos + 4;
    *pos += 4 + payload.len() as u64 + 4;
    Ok((payload_off, len))
}

/// Seek to a frame's `[len]` header at `off` and read + CRC-verify its
/// payload. `limit` is the end of the frame region (the file length minus
/// the trailing index pointer).
fn read_frame_at(file: &mut fs::File, off: u64, limit: u64) -> io::Result<Vec<u8>> {
    if off + 4 > limit {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame header out of bounds",
        ));
    }
    file.seek(SeekFrom::Start(off))?;
    let mut len_bytes = [0u8; 4];
    file.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes) as u64;
    if off + 4 + len + 4 > limit {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame extends past end of file",
        ));
    }
    let mut frame = vec![0u8; len as usize + 4];
    file.read_exact(&mut frame)?;
    let (payload, crc_bytes) = frame.split_at(len as usize);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if wire::crc32(payload) != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame CRC mismatch",
        ));
    }
    frame.truncate(len as usize);
    Ok(frame)
}

/// Disk-backed chunk payloads: the `KBTCHNK2` format described in the
/// module docs — meta frame, item frames (one per [`CubeChunk`]), group
/// frames (one per [`ChunkStoreMeta::group_frames`] entry), an index
/// frame, and a trailing 8-byte index offset. Every frame is
/// `[u32 len][payload][u32 crc32]`; every load re-verifies its frame's
/// CRC, so a corrupted chunk surfaces as an [`io::Error`] instead of
/// silently wrong EM input. [`FileChunkStore::open`] reads only the tail,
/// the index, and the meta frame — peak memory for opening a store is
/// O(metadata), never O(corpus).
#[derive(Debug)]
pub struct FileChunkStore {
    path: PathBuf,
    meta: ChunkStoreMeta,
    /// Byte offset + length of each item frame's payload.
    item_frames: Vec<(u64, u32)>,
    /// Byte offset + length of each group frame's payload.
    group_frame_index: Vec<(u64, u32)>,
}

impl FileChunkStore {
    /// Serialize every item chunk and group frame of `cube` to `path`
    /// (truncating), streaming through a [`io::BufWriter`] so peak write
    /// memory is one frame, not the whole file.
    pub fn write(cube: &ChunkedCube, path: &Path) -> io::Result<()> {
        let meta = ChunkStoreMeta::from_cube(cube);
        let mut w = io::BufWriter::new(fs::File::create(path)?);
        w.write_all(CHUNK_MAGIC)?;
        let mut pos = 8u64;

        let (_, _) = write_frame(&mut w, &mut pos, &meta.encode())?;

        let mut item_frames = Vec::with_capacity(cube.chunks.len());
        let mut payload: Vec<u8> = Vec::new();
        let mut chunk = ChunkBuf::default();
        for idx in 0..cube.chunks.len() {
            cube.load_chunk(idx, &mut chunk)?;
            payload.clear();
            wire::put_u32(&mut payload, chunk.items.start);
            wire::put_u32(&mut payload, chunk.items.end);
            put_u32_slice(&mut payload, &chunk.item_offsets);
            put_u32_slice(&mut payload, &chunk.item_value_offsets);
            put_u32_slice(&mut payload, &chunk.item_values);
            put_u32_slice(&mut payload, &chunk.ig_group);
            put_u32_slice(&mut payload, &chunk.ig_source);
            put_u32_slice(&mut payload, &chunk.ig_slot);
            wire::put_u32(&mut payload, chunk.ig_has_cells.len() as u32);
            payload.extend_from_slice(&chunk.ig_has_cells);
            item_frames.push(write_frame(&mut w, &mut pos, &payload)?);
        }

        let mut group_frame_index = Vec::with_capacity(meta.group_frames.len());
        let mut rebased: Vec<u32> = Vec::new();
        for f in &meta.group_frames {
            let lo = f.start as usize;
            let hi = f.end as usize;
            let cell_base = cube.cell_offsets[lo];
            let cells = cube.cell_offsets[lo] as usize..cube.cell_offsets[hi] as usize;
            payload.clear();
            wire::put_u32(&mut payload, f.start);
            wire::put_u32(&mut payload, f.end);
            put_u32_slice(&mut payload, &cube.group_source[lo..hi]);
            rebased.clear();
            rebased.extend(cube.cell_offsets[lo..=hi].iter().map(|&o| o - cell_base));
            put_u32_slice(&mut payload, &rebased);
            put_u32_slice(&mut payload, &cube.cell_extractor[cells.clone()]);
            wire::put_u32(&mut payload, cells.len() as u32);
            for &c in &cube.cell_confidence[cells] {
                wire::put_f64(&mut payload, c);
            }
            group_frame_index.push(write_frame(&mut w, &mut pos, &payload)?);
        }

        payload.clear();
        wire::put_u32(&mut payload, item_frames.len() as u32);
        for &(off, len) in &item_frames {
            wire::put_u64(&mut payload, off);
            wire::put_u32(&mut payload, len);
        }
        wire::put_u32(&mut payload, group_frame_index.len() as u32);
        for &(off, len) in &group_frame_index {
            wire::put_u64(&mut payload, off);
            wire::put_u32(&mut payload, len);
        }
        let index_pos = pos;
        write_frame(&mut w, &mut pos, &payload)?;
        w.write_all(&index_pos.to_le_bytes())?;
        w.flush()
    }

    /// Open a chunk file written by [`Self::write`]: verify the magic,
    /// follow the trailing offset to the index frame, and decode the meta
    /// frame. Reads O(metadata) bytes regardless of corpus size.
    pub fn open(path: &Path) -> io::Result<Self> {
        let mut file = fs::File::open(path)?;
        let file_len = file.metadata()?.len();
        if file_len < 8 + 8 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a KBTCHNK2 chunk file (too short)",
            ));
        }
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != CHUNK_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a KBTCHNK2 chunk file",
            ));
        }
        let limit = file_len - 8;
        file.seek(SeekFrom::End(-8))?;
        let mut tail = [0u8; 8];
        file.read_exact(&mut tail)?;
        let index_pos = u64::from_le_bytes(tail);
        if index_pos < 8 || index_pos >= limit {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index offset out of bounds",
            ));
        }
        let index = read_frame_at(&mut file, index_pos, limit)?;
        let mut r = WireReader::new(&index);
        let n_item = r.u32().map_err(corrupt)? as usize;
        let mut item_frames = Vec::with_capacity(n_item);
        for _ in 0..n_item {
            let off = r.u64().map_err(corrupt)?;
            let len = r.u32().map_err(corrupt)?;
            item_frames.push((off, len));
        }
        let n_group = r.u32().map_err(corrupt)? as usize;
        let mut group_frame_index = Vec::with_capacity(n_group);
        for _ in 0..n_group {
            let off = r.u64().map_err(corrupt)?;
            let len = r.u32().map_err(corrupt)?;
            group_frame_index.push((off, len));
        }
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "index frame: trailing bytes",
            ));
        }
        for &(off, len) in item_frames.iter().chain(&group_frame_index) {
            if off < 12 || off + len as u64 + 4 > limit {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame entry out of bounds",
                ));
            }
        }
        let meta_payload = read_frame_at(&mut file, 8, limit)?;
        let meta = ChunkStoreMeta::decode(&meta_payload)?;
        if meta.item_chunks.len() != item_frames.len()
            || meta.group_frames.len() != group_frame_index.len()
        {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame table / meta count mismatch",
            ));
        }
        Ok(Self {
            path: path.to_path_buf(),
            meta,
            item_frames,
            group_frame_index,
        })
    }

    /// The store's resident metadata.
    pub fn meta(&self) -> &ChunkStoreMeta {
        &self.meta
    }

    /// Number of group frames in the store.
    pub fn num_group_frames(&self) -> usize {
        self.group_frame_index.len()
    }

    fn read_payload(&self, off: u64, len: u32, what: &str) -> io::Result<Vec<u8>> {
        let mut file = fs::File::open(&self.path)?;
        file.seek(SeekFrom::Start(off))?;
        let mut frame = vec![0u8; len as usize + 4];
        file.read_exact(&mut frame)?;
        let (payload, crc_bytes) = frame.split_at(len as usize);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if wire::crc32(payload) != stored {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{what}: CRC mismatch"),
            ));
        }
        frame.truncate(len as usize);
        Ok(frame)
    }

    /// Load group frame `idx` into `buf` (cleared first, capacity
    /// reused), CRC-verifying the frame.
    pub fn load_group_frame(&self, idx: usize, buf: &mut GroupBuf) -> io::Result<()> {
        let (off, len) = self.group_frame_index[idx];
        let payload = self.read_payload(off, len, &format!("group frame {idx}"))?;
        let mut r = WireReader::new(&payload);
        let start = r.u32().map_err(corrupt)?;
        let end = r.u32().map_err(corrupt)?;
        buf.groups = start..end;
        read_u32_vec(&mut r, &mut buf.group_source)?;
        read_u32_vec(&mut r, &mut buf.cell_offsets)?;
        read_u32_vec(&mut r, &mut buf.cell_extractor)?;
        let n = r.u32().map_err(corrupt)? as usize;
        buf.cell_confidence.clear();
        buf.cell_confidence.reserve(n);
        for _ in 0..n {
            buf.cell_confidence.push(r.f64().map_err(corrupt)?);
        }
        let shape_ok = start <= end
            && buf.group_source.len() == (end - start) as usize
            && buf.cell_offsets.len() == (end - start) as usize + 1
            && buf.cell_offsets.first() == Some(&0)
            && buf.cell_offsets.last().copied() == Some(buf.cell_extractor.len() as u32)
            && buf.cell_extractor.len() == buf.cell_confidence.len()
            && r.is_empty();
        if !shape_ok {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("group frame {idx}: malformed payload"),
            ));
        }
        Ok(())
    }
}

impl ChunkSource for FileChunkStore {
    fn num_chunks(&self) -> usize {
        self.item_frames.len()
    }

    fn load_chunk(&self, idx: usize, buf: &mut ChunkBuf) -> io::Result<()> {
        let (off, len) = self.item_frames[idx];
        let payload = self.read_payload(off, len, &format!("chunk {idx}"))?;
        let mut r = WireReader::new(&payload);
        let start = r.u32().map_err(corrupt)?;
        let end = r.u32().map_err(corrupt)?;
        buf.items = start..end;
        read_u32_vec(&mut r, &mut buf.item_offsets)?;
        read_u32_vec(&mut r, &mut buf.item_value_offsets)?;
        read_u32_vec(&mut r, &mut buf.item_values)?;
        read_u32_vec(&mut r, &mut buf.ig_group)?;
        read_u32_vec(&mut r, &mut buf.ig_source)?;
        read_u32_vec(&mut r, &mut buf.ig_slot)?;
        let n = r.u32().map_err(corrupt)? as usize;
        buf.ig_has_cells.clear();
        buf.ig_has_cells
            .extend_from_slice(r.bytes(n).map_err(corrupt)?);
        if !r.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("chunk {idx}: trailing bytes"),
            ));
        }
        Ok(())
    }
}

/// Hit/miss/evict counters of a [`ChunkCache`], sampled via
/// [`ChunkCache::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups (and prefetches) that went to the loader.
    pub misses: u64,
    /// Decoded buffers dropped to respect the residency cap.
    pub evictions: u64,
}

struct CacheState<B> {
    map: HashMap<usize, Arc<B>>,
    lru: VecDeque<usize>,
}

/// Bounded LRU cache of decoded chunk buffers over a loader (usually a
/// [`FileChunkStore`]). Lookups return `Arc` leases: an eviction only
/// drops the cache's reference, never a worker's, so
/// **`max_resident_chunks` bounds memory and I/O, and can never change a
/// result**. Loads happen outside the lock (concurrent misses on
/// different chunks overlap their I/O); when two threads race to load the
/// same chunk, the first insert wins and both lease the same buffer.
pub struct ChunkCache<B> {
    cap: usize,
    num_chunks: usize,
    loader: Box<dyn Fn(usize) -> io::Result<B> + Send + Sync>,
    state: Mutex<CacheState<B>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl<B> std::fmt::Debug for ChunkCache<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChunkCache")
            .field("cap", &self.cap)
            .field("num_chunks", &self.num_chunks)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl<B> ChunkCache<B> {
    /// Build a cache over `loader` for `num_chunks` chunks, keeping at
    /// most `max_resident_chunks` decoded buffers resident
    /// (`0` = unbounded).
    pub fn new(
        num_chunks: usize,
        max_resident_chunks: usize,
        loader: Box<dyn Fn(usize) -> io::Result<B> + Send + Sync>,
    ) -> Self {
        Self {
            cap: if max_resident_chunks == 0 {
                usize::MAX
            } else {
                max_resident_chunks
            },
            num_chunks,
            loader,
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                lru: VecDeque::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of chunks the cache fronts.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Lease chunk `idx`, loading it on a miss. The load runs outside the
    /// cache lock so concurrent misses overlap their I/O.
    pub fn get(&self, idx: usize) -> io::Result<Arc<B>> {
        {
            let mut st = self.state.lock().unwrap();
            if let Some(b) = st.map.get(&idx).cloned() {
                if let Some(p) = st.lru.iter().position(|&i| i == idx) {
                    st.lru.remove(p);
                }
                st.lru.push_back(idx);
                // ordering: Relaxed — monotonic stat counter, read only for reporting; no memory is published through it.
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(b);
            }
        }
        // ordering: Relaxed — monotonic stat counter, read only for reporting; no memory is published through it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let b = (self.loader)(idx)?;
        Ok(self.insert(idx, Arc::new(b)))
    }

    /// Warm chunk `idx` if absent. Load errors are swallowed — the
    /// worker's own [`Self::get`] re-surfaces them with context.
    pub fn prefetch(&self, idx: usize) {
        if self.state.lock().unwrap().map.contains_key(&idx) {
            return;
        }
        // ordering: Relaxed — monotonic stat counter, read only for reporting; no memory is published through it.
        self.misses.fetch_add(1, Ordering::Relaxed);
        if let Ok(b) = (self.loader)(idx) {
            self.insert(idx, Arc::new(b));
        }
    }

    fn insert(&self, idx: usize, b: Arc<B>) -> Arc<B> {
        let mut st = self.state.lock().unwrap();
        if let Some(existing) = st.map.get(&idx).cloned() {
            return existing;
        }
        st.map.insert(idx, b.clone());
        st.lru.push_back(idx);
        while st.map.len() > self.cap {
            // Evict the least-recently-used entry that is not the one we
            // just inserted (cap 1 must still admit the new chunk).
            let Some(p) = st.lru.iter().position(|&i| i != idx) else {
                break;
            };
            let victim = st.lru.remove(p).unwrap();
            st.map.remove(&victim);
            // ordering: Relaxed — monotonic stat counter, read only for reporting; no memory is published through it.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        b
    }

    /// Snapshot the hit/miss/evict counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            // ordering: Relaxed — stat snapshot; the counters are advisory and order nothing.
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

impl ChunkCache<ChunkBuf> {
    /// Cache of decoded item-frame payloads over `store`.
    pub fn for_items(store: Arc<FileChunkStore>, max_resident_chunks: usize) -> Self {
        let n = store.num_chunks();
        Self::new(
            n,
            max_resident_chunks,
            Box::new(move |idx| {
                let mut buf = ChunkBuf::default();
                store.load_chunk(idx, &mut buf)?;
                Ok(buf)
            }),
        )
    }
}

impl ChunkCache<GroupBuf> {
    /// Cache of decoded group-frame payloads over `store`.
    pub fn for_group_frames(store: Arc<FileChunkStore>, max_resident_chunks: usize) -> Self {
        let n = store.num_group_frames();
        Self::new(
            n,
            max_resident_chunks,
            Box::new(move |idx| {
                let mut buf = GroupBuf::default();
                store.load_group_frame(idx, &mut buf)?;
                Ok(buf)
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::ids::{ExtractorId, ValueId};
    use crate::triple::Observation;

    fn obs(e: u32, w: u32, d: u32, v: u32, c: f64) -> Observation {
        Observation {
            extractor: ExtractorId::new(e),
            source: SourceId::new(w),
            item: ItemId::new(d),
            value: ValueId::new(v),
            confidence: c,
        }
    }

    fn sample_cube() -> ObservationCube {
        let mut b = CubeBuilder::new();
        for w in 0..6u32 {
            for d in 0..9u32 {
                for e in 0..(1 + (w + d) % 3) {
                    b.push(obs(e, w, d, (w + d) % 4, 0.3 + 0.1 * e as f64));
                }
            }
        }
        b.build()
    }

    /// Every column must be a faithful gather of the cube.
    fn assert_matches_cube(cc: &ChunkedCube, cube: &ObservationCube) {
        assert_eq!(cc.num_groups(), cube.num_groups());
        assert_eq!(cc.num_cells(), cube.num_cells());
        assert_eq!(cc.num_sources(), cube.num_sources());
        assert_eq!(cc.num_extractors(), cube.num_extractors());
        assert_eq!(cc.num_items(), cube.num_items());
        assert_eq!(cc.num_values(), cube.num_values());
        for (g, grp) in cube.groups().iter().enumerate() {
            assert_eq!(cc.group_source[g], grp.source.0);
            assert_eq!(cc.group_item[g], grp.item.0);
            assert_eq!(cc.group_value[g], grp.value.0);
            let cells = cube.cells_of(grp);
            let r = cc.cells_of_group(g);
            assert_eq!(r.len(), cells.len());
            for (k, c) in cells.iter().enumerate() {
                assert_eq!(cc.cell_extractor[r.start + k], c.extractor.0);
                assert_eq!(
                    cc.cell_confidence[r.start + k].to_bits(),
                    c.confidence.to_bits()
                );
            }
        }
        for w in 0..cube.num_sources() {
            let r = cube.source_groups(SourceId::new(w as u32));
            if r.is_empty() {
                assert_eq!(cc.source_offsets[w], cc.source_offsets[w + 1]);
            } else {
                assert_eq!(cc.source_offsets[w] as usize, r.start);
                assert_eq!(cc.source_offsets[w + 1] as usize, r.end);
            }
        }
        for d in 0..cube.num_items() {
            let vals = cube.observed_values(ItemId::new(d as u32));
            assert_eq!(
                cc.item_values_of(d),
                vals.iter().map(|v| v.0).collect::<Vec<_>>().as_slice()
            );
            let rows: Vec<usize> = cube.groups_of_item(ItemId::new(d as u32)).collect();
            let lo = cc.item_offsets[d] as usize;
            let hi = cc.item_offsets[d + 1] as usize;
            assert_eq!(hi - lo, rows.len());
            for (k, &g) in rows.iter().enumerate() {
                let grp = &cube.groups()[g];
                assert_eq!(cc.ig_group[lo + k] as usize, g);
                assert_eq!(cc.ig_source[lo + k], grp.source.0);
                assert_eq!(
                    cc.item_values_of(d)[cc.ig_slot[lo + k] as usize],
                    grp.value.0
                );
                assert_eq!(cc.ig_has_cells[lo + k] == 1, !cube.cells_of(grp).is_empty());
            }
        }
        // Extractor CSR covers every cell exactly once, in global order.
        assert_eq!(*cc.ext_offsets.last().unwrap() as usize, cube.num_cells());
        for e in 0..cube.num_extractors() {
            let lo = cc.ext_offsets[e] as usize;
            let hi = cc.ext_offsets[e + 1] as usize;
            let mut prev_cell = None;
            for k in lo..hi {
                let g = cc.ext_group[k] as usize;
                let r = cc.cells_of_group(g);
                let ci = (r.start..r.end)
                    .find(|&ci| {
                        cc.cell_extractor[ci] as usize == e
                            && cc.cell_confidence[ci].to_bits() == cc.ext_conf[k].to_bits()
                    })
                    .expect("ext cell present in its group");
                if let Some(prev) = prev_cell {
                    assert!(ci > prev, "extractor cells must keep global order");
                }
                prev_cell = Some(ci);
            }
        }
    }

    fn assert_chunks_tile(cc: &ChunkedCube) {
        let mut next_item = 0u32;
        let mut next_row = 0u32;
        let mut cells = 0u64;
        for chunk in &cc.chunks {
            assert_eq!(chunk.items.start, next_item);
            assert_eq!(chunk.rows.start, next_row);
            assert_eq!(
                chunk.rows,
                cc.item_offsets[chunk.items.start as usize]
                    ..cc.item_offsets[chunk.items.end as usize]
            );
            next_item = chunk.items.end;
            next_row = chunk.rows.end;
            cells += chunk.cells as u64;
        }
        assert_eq!(next_item as usize, cc.num_items());
        assert_eq!(next_row as usize, cc.ig_group.len());
        assert_eq!(cells as usize, cc.num_cells());
    }

    #[test]
    fn columns_match_cube_at_several_chunk_sizes() {
        let cube = sample_cube();
        for target in [1usize, 7, 64, 1 << 20] {
            let cc = ChunkedCube::from_cube(
                &cube,
                &ChunkingConfig {
                    target_cells: target,
                },
            );
            assert_matches_cube(&cc, &cube);
            assert_chunks_tile(&cc);
        }
    }

    #[test]
    fn chunking_survives_delta_and_retract() {
        let cube = sample_cube();
        let grown = cube.apply_delta(&[obs(7, 9, 12, 5, 0.9), obs(0, 0, 0, 3, 0.2)]);
        let cc = ChunkedCube::from_cube(&grown, &ChunkingConfig { target_cells: 16 });
        assert_matches_cube(&cc, &grown);
        assert_chunks_tile(&cc);

        let shrunk = grown.retract(&[(SourceId::new(0), ItemId::new(0), ValueId::new(0))]);
        let cc = ChunkedCube::from_cube(&shrunk, &ChunkingConfig { target_cells: 16 });
        assert_matches_cube(&cc, &shrunk);
        assert_chunks_tile(&cc);
    }

    #[test]
    fn empty_cube_has_no_chunks() {
        let cc = ChunkedCube::from_cube(&CubeBuilder::new().build(), &ChunkingConfig::default());
        assert_eq!(cc.num_chunks(), 0);
        assert_eq!(cc.num_groups(), 0);
        assert_chunks_tile(&cc);
    }

    #[test]
    fn meta_frames_tile_and_match_cube() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let meta = ChunkStoreMeta::from_cube(&cc);
        assert_eq!(meta.num_groups as usize, cc.num_groups());
        assert_eq!(meta.num_cells as usize, cc.num_cells());
        assert_eq!(meta.item_chunks, cc.chunks);
        assert_eq!(meta.source_offsets, cc.source_offsets);
        // Group frames tile the group list.
        assert!(meta.group_frames.len() > 1, "want multiple group frames");
        let mut next = 0u32;
        for f in &meta.group_frames {
            assert_eq!(f.start, next);
            assert!(f.end > f.start);
            next = f.end;
        }
        assert_eq!(next as usize, cc.num_groups());
        // Per-source extractor lists match the cube's.
        for w in 0..cube.num_sources() {
            let lo = meta.source_ext_offsets[w] as usize;
            let hi = meta.source_ext_offsets[w + 1] as usize;
            let expect: Vec<u32> = cube
                .extractors_on_source(SourceId::new(w as u32))
                .iter()
                .map(|e| e.0)
                .collect();
            assert_eq!(
                &meta.source_ext_ids[lo..hi],
                expect.as_slice(),
                "source {w}"
            );
        }
        // Distinct-item counts.
        for w in 0..cube.num_sources() {
            let lo = cc.source_offsets[w] as usize;
            let hi = cc.source_offsets[w + 1] as usize;
            let mut items: Vec<u32> = cc.group_item[lo..hi].to_vec();
            items.sort_unstable();
            items.dedup();
            assert_eq!(meta.source_item_counts[w] as usize, items.len());
        }
    }

    #[test]
    fn views_match_underlying_columns() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let mut buf = ChunkBuf::default();
        for idx in 0..cc.num_chunks() {
            cc.load_chunk(idx, &mut buf).unwrap();
            let a = cc.item_view(idx);
            let b = buf.view();
            assert_eq!(a.items, b.items);
            assert_eq!(a.num_items(), b.num_items());
            for li in 0..a.num_items() {
                assert_eq!(a.rows(li), b.rows(li));
                assert_eq!(a.values(li), b.values(li));
            }
            assert_eq!(a.ig_group, b.ig_group);
            assert_eq!(a.ig_source, b.ig_source);
            assert_eq!(a.ig_slot, b.ig_slot);
            assert_eq!(a.ig_has_cells, b.ig_has_cells);
        }
        let meta = ChunkStoreMeta::from_cube(&cc);
        for f in &meta.group_frames {
            let v = cc.group_view(f.clone());
            assert_eq!(v.num_groups(), f.len());
            for lg in 0..v.num_groups() {
                let g = f.start as usize + lg;
                assert_eq!(v.group_source[lg], cc.group_source[g]);
                let cells = v.cells(lg);
                let global = cc.cells_of_group(g);
                assert_eq!(cells.len(), global.len());
                for (k, ci) in global.enumerate() {
                    assert_eq!(v.cell_extractor[cells.start + k], cc.cell_extractor[ci]);
                    assert_eq!(
                        v.cell_confidence[cells.start + k].to_bits(),
                        cc.cell_confidence[ci].to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn file_store_round_trips_every_chunk() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        assert!(cc.num_chunks() > 1, "want a multi-chunk test corpus");
        let dir = std::env::temp_dir().join("kbt_chunk_store_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let store = FileChunkStore::open(&path).unwrap();
        assert_eq!(store.num_chunks(), cc.num_chunks());
        assert_eq!(store.meta(), &ChunkStoreMeta::from_cube(&cc));
        let (mut mem, mut disk) = (ChunkBuf::default(), ChunkBuf::default());
        for idx in 0..cc.num_chunks() {
            cc.load_chunk(idx, &mut mem).unwrap();
            store.load_chunk(idx, &mut disk).unwrap();
            assert_eq!(mem, disk, "chunk {idx}");
        }
        let mut gbuf = GroupBuf::default();
        for (idx, f) in store.meta().group_frames.clone().iter().enumerate() {
            store.load_group_frame(idx, &mut gbuf).unwrap();
            assert_eq!(gbuf.groups, *f);
            let v = cc.group_view(f.clone());
            let d = gbuf.view();
            assert_eq!(d.group_source, v.group_source);
            for lg in 0..v.num_groups() {
                assert_eq!(d.cells(lg), v.cells(lg));
            }
            assert_eq!(d.cell_extractor, v.cell_extractor);
            assert_eq!(
                d.cell_confidence
                    .iter()
                    .map(|c| c.to_bits())
                    .collect::<Vec<_>>(),
                v.cell_confidence
                    .iter()
                    .map(|c| c.to_bits())
                    .collect::<Vec<_>>()
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn file_store_detects_corruption() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let dir = std::env::temp_dir().join("kbt_chunk_store_corrupt");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        // The flip lands in some frame's payload (or its CRC): opening or
        // loading must surface at least one error, never bad data.
        match FileChunkStore::open(&path) {
            Err(_) => {}
            Ok(store) => {
                let mut buf = ChunkBuf::default();
                let mut gbuf = GroupBuf::default();
                let any_err = (0..store.num_chunks())
                    .any(|idx| store.load_chunk(idx, &mut buf).is_err())
                    || (0..store.num_group_frames())
                        .any(|idx| store.load_group_frame(idx, &mut gbuf).is_err());
                assert!(any_err, "corruption must not pass CRC");
            }
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let dir = std::env::temp_dir().join("kbt_chunk_store_torn");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let bytes = fs::read(&path).unwrap();
        for keep in [5usize, 12, bytes.len() / 3, bytes.len() - 3] {
            fs::write(&path, &bytes[..keep]).unwrap();
            assert!(
                FileChunkStore::open(&path).is_err(),
                "truncation to {keep} bytes must fail open"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn chunk_cache_caps_residency_and_counts() {
        let cube = sample_cube();
        let cc = ChunkedCube::from_cube(&cube, &ChunkingConfig { target_cells: 8 });
        let dir = std::env::temp_dir().join("kbt_chunk_cache_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chunks.kbt");
        FileChunkStore::write(&cc, &path).unwrap();
        let store = Arc::new(FileChunkStore::open(&path).unwrap());
        let n = store.num_chunks();
        assert!(n >= 3, "want ≥ 3 chunks, got {n}");

        // Cap 1: every distinct access misses, repeats on the same chunk hit.
        let cache = ChunkCache::for_items(store.clone(), 1);
        let a = cache.get(0).unwrap();
        let b = cache.get(0).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat get must lease the same buf");
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0
            }
        );
        let _c = cache.get(1).unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 1,
                misses: 2,
                evictions: 1
            }
        );
        // The evicted lease is still valid data.
        let mut direct = ChunkBuf::default();
        store.load_chunk(0, &mut direct).unwrap();
        assert_eq!(*a, direct);

        // Prefetch warms: the subsequent get is a hit.
        cache.prefetch(2);
        let s0 = cache.stats();
        let _d = cache.get(2).unwrap();
        let s1 = cache.stats();
        assert_eq!(s1.hits, s0.hits + 1);
        assert_eq!(s1.misses, s0.misses);

        // Unbounded (0): no evictions ever.
        let unbounded = ChunkCache::for_items(store.clone(), 0);
        for idx in 0..n {
            unbounded.get(idx).unwrap();
        }
        for idx in 0..n {
            unbounded.get(idx).unwrap();
        }
        assert_eq!(
            unbounded.stats(),
            CacheStats {
                hits: n as u64,
                misses: n as u64,
                evictions: 0
            }
        );
        fs::remove_file(&path).unwrap();
    }
}
