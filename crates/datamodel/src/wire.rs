//! Stable little-endian on-disk encoding for the data-model types.
//!
//! The persistence layer (`kbt-store`) frames everything it writes —
//! checkpoint snapshots and the append-only delta log — out of the
//! primitives here: fixed-width little-endian integers, IEEE-754 bit
//! patterns for floats (so a decoded value is **bit-identical** to the
//! encoded one, never re-parsed through decimal), and the two record
//! payloads the delta log carries, [`Observation`]s and
//! `(source, item, value)` retraction keys.
//!
//! The encoding is deliberately hand-rolled, like the vendor shims: no
//! serde, no varints, no alignment games. Every multi-byte quantity is
//! little-endian; every float travels as its `to_bits()` image. Framing
//! (lengths, checksums, magics) is the caller's business — this module
//! only defines how individual values look on disk, plus the CRC-32
//! ([`crc32`]) used for per-record integrity.

use crate::ids::{ExtractorId, ItemId, SourceId, ValueId};
use crate::triple::Observation;

/// Encoded size of one [`Observation`]: four `u32` ids + one `f64`.
pub const OBSERVATION_WIRE_BYTES: usize = 24;

/// Encoded size of one `(source, item, value)` retraction key.
pub const TRIPLE_KEY_WIRE_BYTES: usize = 12;

// ---- writing ----

/// Append a `u8`.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, x: u8) {
    buf.push(x);
}

/// Append a `u32`, little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append a `u64`, little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append an `f64` as its exact IEEE-754 bit pattern, little-endian.
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

/// Append one [`Observation`] (`extractor`, `source`, `item`, `value`,
/// `confidence` — [`OBSERVATION_WIRE_BYTES`] bytes).
pub fn put_observation(buf: &mut Vec<u8>, o: &Observation) {
    put_u32(buf, o.extractor.0);
    put_u32(buf, o.source.0);
    put_u32(buf, o.item.0);
    put_u32(buf, o.value.0);
    put_f64(buf, o.confidence);
}

/// Append one `(source, item, value)` retraction key
/// ([`TRIPLE_KEY_WIRE_BYTES`] bytes).
pub fn put_triple_key(buf: &mut Vec<u8>, key: &(SourceId, ItemId, ValueId)) {
    put_u32(buf, key.0 .0);
    put_u32(buf, key.1 .0);
    put_u32(buf, key.2 .0);
}

// ---- reading ----

/// Decoding failed: the input ended early. The byte-level integrity of a
/// frame is the caller's job (CRC before parse); a reader hitting this
/// means the frame length and its payload disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTruncated;

impl std::fmt::Display for WireTruncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire payload truncated")
    }
}

impl std::error::Error for WireTruncated {}

/// Hard ceiling on any length-prefixed frame read from an untrusted
/// peer (16 MiB). Network and log readers pass this (or something
/// tighter) to [`WireReader::frame_len`] so a hostile length prefix —
/// `len = u32::MAX` from a malicious client — is rejected as a typed
/// decode error *before* any buffer is sized from it.
pub const MAX_FRAME_BYTES: u32 = 16 * 1024 * 1024;

/// Typed decode failure of a length-prefixed structure.
///
/// [`WireTruncated`] is kept as the error of the primitive reads (it is
/// matched all over the persistence layer); this enum covers the checks
/// that guard **allocation**: a frame length or element count must be
/// proven sane against a cap or the remaining payload before any `Vec`
/// is sized from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the announced structure did.
    Truncated,
    /// A frame length prefix exceeded the caller's cap — an absurd or
    /// hostile frame, rejected before allocating.
    FrameTooLarge {
        /// The announced length.
        len: u32,
        /// The cap it violated.
        max: u32,
    },
    /// An element count announced more elements than the remaining
    /// payload could possibly hold — rejected before allocating.
    CountOverrun {
        /// The announced element count.
        count: u32,
        /// Encoded size of one element.
        elem_bytes: usize,
        /// Bytes actually remaining in the payload.
        remaining: usize,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "wire payload truncated"),
            Self::FrameTooLarge { len, max } => {
                write!(f, "frame length {len} exceeds the {max}-byte cap")
            }
            Self::CountOverrun {
                count,
                elem_bytes,
                remaining,
            } => write!(
                f,
                "element count {count} x {elem_bytes} bytes overruns the {remaining}-byte payload"
            ),
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireTruncated> for WireError {
    fn from(_: WireTruncated) -> Self {
        Self::Truncated
    }
}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireTruncated> {
        if self.data.len() < n {
            return Err(WireTruncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Consume one `u8`.
    pub fn u8(&mut self) -> Result<u8, WireTruncated> {
        Ok(self.bytes(1)?[0])
    }

    /// Consume one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireTruncated> {
        let b = self.bytes(4)?.first_chunk::<4>().ok_or(WireTruncated)?;
        Ok(u32::from_le_bytes(*b))
    }

    /// Consume one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireTruncated> {
        let b = self.bytes(8)?.first_chunk::<8>().ok_or(WireTruncated)?;
        Ok(u64::from_le_bytes(*b))
    }

    /// Consume one `f64` stored as its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireTruncated> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume one [`Observation`].
    pub fn observation(&mut self) -> Result<Observation, WireTruncated> {
        Ok(Observation {
            extractor: ExtractorId::new(self.u32()?),
            source: SourceId::new(self.u32()?),
            item: ItemId::new(self.u32()?),
            value: ValueId::new(self.u32()?),
            confidence: self.f64()?,
        })
    }

    /// Consume one `(source, item, value)` retraction key.
    pub fn triple_key(&mut self) -> Result<(SourceId, ItemId, ValueId), WireTruncated> {
        Ok((
            SourceId::new(self.u32()?),
            ItemId::new(self.u32()?),
            ValueId::new(self.u32()?),
        ))
    }

    /// Consume a `u32` frame-length prefix, rejecting anything over
    /// `max` **before the caller allocates a buffer for it**. A hostile
    /// peer announcing `len = u32::MAX` costs four bytes of input and a
    /// typed error, never an allocation.
    pub fn frame_len(&mut self, max: u32) -> Result<usize, WireError> {
        let len = self.u32()?;
        if len > max {
            return Err(WireError::FrameTooLarge { len, max });
        }
        Ok(len as usize)
    }

    /// Consume a `u32` element-count prefix for elements of
    /// `elem_bytes` encoded bytes each, rejecting counts the remaining
    /// payload cannot hold. Guards `Vec::with_capacity(count)` against
    /// absurd counts: a count that passes is bounded by
    /// `remaining / elem_bytes`, so sizing a buffer from it is safe.
    pub fn count(&mut self, elem_bytes: usize) -> Result<usize, WireError> {
        debug_assert!(elem_bytes > 0, "elements must occupy at least one byte");
        let count = self.u32()?;
        if (count as u64) * (elem_bytes as u64) > self.data.len() as u64 {
            return Err(WireError::CountOverrun {
                count,
                elem_bytes,
                remaining: self.data.len(),
            });
        }
        Ok(count as usize)
    }
}

// ---- integrity ----

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// per-record checksum of the delta log and the whole-file checksum of
/// checkpoint snapshots.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_floats_round_trip_bitwise() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, 0.1 + 0.2);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
        assert!(r.is_empty());
    }

    #[test]
    fn observation_and_key_round_trip() {
        let o = Observation {
            extractor: ExtractorId::new(3),
            source: SourceId::new(u32::MAX),
            item: ItemId::new(0),
            value: ValueId::new(99),
            confidence: 0.625,
        };
        let key = (SourceId::new(1), ItemId::new(2), ValueId::new(3));
        let mut buf = Vec::new();
        put_observation(&mut buf, &o);
        put_triple_key(&mut buf, &key);
        assert_eq!(buf.len(), OBSERVATION_WIRE_BYTES + TRIPLE_KEY_WIRE_BYTES);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.observation().unwrap(), o);
        assert_eq!(r.triple_key().unwrap(), key);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 5);
        let mut r = WireReader::new(&buf[..2]);
        assert_eq!(r.u32(), Err(WireTruncated));
        let mut r = WireReader::new(&buf);
        assert_eq!(r.observation(), Err(WireTruncated));
    }

    /// The hostile-length-prefix guard: `len = u32::MAX` (or anything
    /// over the cap) is a typed error before any allocation happens.
    #[test]
    fn absurd_frame_lengths_are_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX);
        let mut r = WireReader::new(&buf);
        assert_eq!(
            r.frame_len(MAX_FRAME_BYTES),
            Err(WireError::FrameTooLarge {
                len: u32::MAX,
                max: MAX_FRAME_BYTES
            })
        );

        // At or under the cap passes, independent of remaining bytes —
        // the *frame* guard bounds the buffer the caller will read into.
        let mut buf = Vec::new();
        put_u32(&mut buf, 64);
        assert_eq!(WireReader::new(&buf).frame_len(64), Ok(64));
        assert_eq!(
            WireReader::new(&buf).frame_len(63),
            Err(WireError::FrameTooLarge { len: 64, max: 63 })
        );

        // A truncated prefix is still a truncation error.
        assert_eq!(
            WireReader::new(&buf[..2]).frame_len(64),
            Err(WireError::Truncated)
        );
    }

    /// The element-count guard: a count the remaining payload cannot
    /// hold is a typed error, so `Vec::with_capacity(count)` is safe on
    /// any count that passes.
    #[test]
    fn overrunning_element_counts_are_rejected_before_allocating() {
        let mut buf = Vec::new();
        put_u32(&mut buf, u32::MAX); // claims 4 billion observations...
        put_observation(
            &mut buf,
            &Observation {
                extractor: ExtractorId::new(0),
                source: SourceId::new(0),
                item: ItemId::new(0),
                value: ValueId::new(0),
                confidence: 1.0,
            },
        ); // ...but carries one
        let mut r = WireReader::new(&buf);
        assert_eq!(
            r.count(OBSERVATION_WIRE_BYTES),
            Err(WireError::CountOverrun {
                count: u32::MAX,
                elem_bytes: OBSERVATION_WIRE_BYTES,
                remaining: OBSERVATION_WIRE_BYTES,
            })
        );

        // An honest count passes and the elements decode.
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        for _ in 0..2 {
            put_triple_key(
                &mut buf,
                &(SourceId::new(1), ItemId::new(2), ValueId::new(3)),
            );
        }
        let mut r = WireReader::new(&buf);
        assert_eq!(r.count(TRIPLE_KEY_WIRE_BYTES), Ok(2));
        assert!(r.triple_key().is_ok() && r.triple_key().is_ok());
        assert!(r.is_empty());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
