//! Stable little-endian on-disk encoding for the data-model types.
//!
//! The persistence layer (`kbt-store`) frames everything it writes —
//! checkpoint snapshots and the append-only delta log — out of the
//! primitives here: fixed-width little-endian integers, IEEE-754 bit
//! patterns for floats (so a decoded value is **bit-identical** to the
//! encoded one, never re-parsed through decimal), and the two record
//! payloads the delta log carries, [`Observation`]s and
//! `(source, item, value)` retraction keys.
//!
//! The encoding is deliberately hand-rolled, like the vendor shims: no
//! serde, no varints, no alignment games. Every multi-byte quantity is
//! little-endian; every float travels as its `to_bits()` image. Framing
//! (lengths, checksums, magics) is the caller's business — this module
//! only defines how individual values look on disk, plus the CRC-32
//! ([`crc32`]) used for per-record integrity.

use crate::ids::{ExtractorId, ItemId, SourceId, ValueId};
use crate::triple::Observation;

/// Encoded size of one [`Observation`]: four `u32` ids + one `f64`.
pub const OBSERVATION_WIRE_BYTES: usize = 24;

/// Encoded size of one `(source, item, value)` retraction key.
pub const TRIPLE_KEY_WIRE_BYTES: usize = 12;

// ---- writing ----

/// Append a `u8`.
#[inline]
pub fn put_u8(buf: &mut Vec<u8>, x: u8) {
    buf.push(x);
}

/// Append a `u32`, little-endian.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, x: u32) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append a `u64`, little-endian.
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, x: u64) {
    buf.extend_from_slice(&x.to_le_bytes());
}

/// Append an `f64` as its exact IEEE-754 bit pattern, little-endian.
#[inline]
pub fn put_f64(buf: &mut Vec<u8>, x: f64) {
    put_u64(buf, x.to_bits());
}

/// Append one [`Observation`] (`extractor`, `source`, `item`, `value`,
/// `confidence` — [`OBSERVATION_WIRE_BYTES`] bytes).
pub fn put_observation(buf: &mut Vec<u8>, o: &Observation) {
    put_u32(buf, o.extractor.0);
    put_u32(buf, o.source.0);
    put_u32(buf, o.item.0);
    put_u32(buf, o.value.0);
    put_f64(buf, o.confidence);
}

/// Append one `(source, item, value)` retraction key
/// ([`TRIPLE_KEY_WIRE_BYTES`] bytes).
pub fn put_triple_key(buf: &mut Vec<u8>, key: &(SourceId, ItemId, ValueId)) {
    put_u32(buf, key.0 .0);
    put_u32(buf, key.1 .0);
    put_u32(buf, key.2 .0);
}

// ---- reading ----

/// Decoding failed: the input ended early. The byte-level integrity of a
/// frame is the caller's job (CRC before parse); a reader hitting this
/// means the frame length and its payload disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTruncated;

impl std::fmt::Display for WireTruncated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "wire payload truncated")
    }
}

impl std::error::Error for WireTruncated {}

/// A bounds-checked cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    data: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Read from the start of `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Self { data }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len()
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Consume `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireTruncated> {
        if self.data.len() < n {
            return Err(WireTruncated);
        }
        let (head, tail) = self.data.split_at(n);
        self.data = tail;
        Ok(head)
    }

    /// Consume one `u8`.
    pub fn u8(&mut self) -> Result<u8, WireTruncated> {
        Ok(self.bytes(1)?[0])
    }

    /// Consume one little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireTruncated> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    /// Consume one little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireTruncated> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// Consume one `f64` stored as its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireTruncated> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume one [`Observation`].
    pub fn observation(&mut self) -> Result<Observation, WireTruncated> {
        Ok(Observation {
            extractor: ExtractorId::new(self.u32()?),
            source: SourceId::new(self.u32()?),
            item: ItemId::new(self.u32()?),
            value: ValueId::new(self.u32()?),
            confidence: self.f64()?,
        })
    }

    /// Consume one `(source, item, value)` retraction key.
    pub fn triple_key(&mut self) -> Result<(SourceId, ItemId, ValueId), WireTruncated> {
        Ok((
            SourceId::new(self.u32()?),
            ItemId::new(self.u32()?),
            ValueId::new(self.u32()?),
        ))
    }
}

// ---- integrity ----

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the
/// per-record checksum of the delta log and the whole-file checksum of
/// checkpoint snapshots.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_and_floats_round_trip_bitwise() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_f64(&mut buf, 0.1 + 0.2);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert_eq!(r.f64().unwrap(), 0.1 + 0.2);
        assert!(r.is_empty());
    }

    #[test]
    fn observation_and_key_round_trip() {
        let o = Observation {
            extractor: ExtractorId::new(3),
            source: SourceId::new(u32::MAX),
            item: ItemId::new(0),
            value: ValueId::new(99),
            confidence: 0.625,
        };
        let key = (SourceId::new(1), ItemId::new(2), ValueId::new(3));
        let mut buf = Vec::new();
        put_observation(&mut buf, &o);
        put_triple_key(&mut buf, &key);
        assert_eq!(buf.len(), OBSERVATION_WIRE_BYTES + TRIPLE_KEY_WIRE_BYTES);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.observation().unwrap(), o);
        assert_eq!(r.triple_key().unwrap(), key);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 5);
        let mut r = WireReader::new(&buf[..2]);
        assert_eq!(r.u32(), Err(WireTruncated));
        let mut r = WireReader::new(&buf);
        assert_eq!(r.observation(), Err(WireTruncated));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic check value of CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }
}
