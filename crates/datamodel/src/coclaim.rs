//! Co-claim index: per-item source multiplicities and the candidate-pair
//! prefilter for copy detection.
//!
//! Copy detection (Section 5.4.2) scores *source pairs*, but its raw
//! expansion — every pair of claims on every item — is quadratic in
//! per-item fan-in and dominated by pairs far too thin to score: a pair
//! needs `min_overlap` co-claimed items before its agreement pattern
//! means anything. [`CoClaimIndex`] collapses the cube to the only thing
//! pair discovery needs, the per-item list of `(source, claim count)`
//! entries, and [`CoClaimIndex::candidate_pairs`] turns that into the
//! exact overlap census so pairs below the threshold are pruned *before*
//! any value comparison or exclusivity bookkeeping runs.
//!
//! Overlap here is **claim-pair counting**: a pair of sources with `c_a`
//! and `c_b` claims on one item contributes `c_a · c_b` to its overlap —
//! exactly what the pairwise expansion over claims produces, so a
//! detector driven by this prefilter stays bit-for-bit identical to one
//! that expands every claim pair.

use crate::cube::ObservationCube;
use crate::ids::{ItemId, SourceId};

/// One candidate source pair surviving the overlap prefilter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CandidatePair {
    /// First source of the pair (ordered, `a < b`).
    pub a: SourceId,
    /// Second source of the pair.
    pub b: SourceId,
    /// Claim-pair overlap: `Σ_d c_a(d) · c_b(d)` over co-claimed items.
    pub overlap: u64,
}

/// Per-item source-multiplicity index over an [`ObservationCube`].
///
/// For each data item, the sorted list of `(source, claims)` entries,
/// where `claims` counts the item's triple groups attributed to that
/// source (a source claiming two values for one item counts twice —
/// claim-pair semantics). Built in one linear pass over the cube's item
/// index; `O(cells)` time, `O(Σ_d distinct_sources(d))` space.
#[derive(Debug, Clone)]
pub struct CoClaimIndex {
    /// `offsets[d]..offsets[d + 1]` indexes `entries` for item `d`.
    offsets: Vec<u32>,
    /// `(source, claim count)` per item, sorted by source.
    entries: Vec<(SourceId, u32)>,
}

impl CoClaimIndex {
    /// Build the index from a cube.
    pub fn build(cube: &ObservationCube) -> Self {
        let ni = cube.num_items();
        let mut offsets = Vec::with_capacity(ni + 1);
        offsets.push(0u32);
        let mut entries: Vec<(SourceId, u32)> = Vec::new();
        let mut per_item: Vec<(SourceId, u32)> = Vec::new();
        for d in 0..ni {
            per_item.clear();
            for g in cube.groups_of_item(ItemId::new(d as u32)) {
                let w = cube.groups()[g].source;
                match per_item.iter_mut().find(|(s, _)| *s == w) {
                    Some((_, c)) => *c += 1,
                    None => per_item.push((w, 1)),
                }
            }
            per_item.sort_unstable_by_key(|(s, _)| *s);
            entries.extend_from_slice(&per_item);
            offsets.push(entries.len() as u32);
        }
        Self { offsets, entries }
    }

    /// Number of items the index covers.
    pub fn num_items(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// The `(source, claim count)` entries of item `d`, sorted by source.
    pub fn item_sources(&self, d: ItemId) -> &[(SourceId, u32)] {
        let lo = self.offsets[d.index()] as usize;
        let hi = self.offsets[d.index() + 1] as usize;
        &self.entries[lo..hi]
    }

    /// Visit every ordered source pair co-claiming item `d` with its
    /// claim-pair weight `c_a · c_b` — **the** census fold, shared by the
    /// serial [`Self::pair_overlaps`] and the sharded detector's keyed
    /// reduce so the two can never drift apart.
    pub fn for_item_pairs(&self, d: ItemId, mut f: impl FnMut(SourceId, SourceId, u64)) {
        let srcs = self.item_sources(d);
        for i in 0..srcs.len() {
            for j in i + 1..srcs.len() {
                let (a, ca) = srcs[i];
                let (b, cb) = srcs[j];
                f(a, b, ca as u64 * cb as u64);
            }
        }
    }

    /// The exact claim-pair overlap of every co-claiming source pair,
    /// sorted by `(a, b)`. Serial reference census; the sharded detector
    /// computes the same map with a keyed reduce over
    /// [`Self::for_item_pairs`].
    pub fn pair_overlaps(&self) -> Vec<((SourceId, SourceId), u64)> {
        let mut map: std::collections::HashMap<(SourceId, SourceId), u64> =
            std::collections::HashMap::new();
        for d in 0..self.num_items() {
            self.for_item_pairs(ItemId::new(d as u32), |a, b, w| {
                *map.entry((a, b)).or_insert(0) += w;
            });
        }
        let mut out: Vec<_> = map.into_iter().collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Candidate pairs for copy detection: every ordered source pair whose
    /// claim-pair overlap reaches `min_overlap`, sorted by `(a, b)`.
    /// Everything below the threshold is pruned here, before any
    /// agreement scoring.
    pub fn candidate_pairs(&self, min_overlap: usize) -> Vec<CandidatePair> {
        self.pair_overlaps()
            .into_iter()
            .filter(|(_, overlap)| *overlap >= min_overlap as u64)
            .map(|((a, b), overlap)| CandidatePair { a, b, overlap })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::CubeBuilder;
    use crate::ids::{ExtractorId, ValueId};
    use crate::triple::Observation;

    fn obs(e: u32, w: u32, d: u32, v: u32) -> Observation {
        Observation::certain(
            ExtractorId::new(e),
            SourceId::new(w),
            ItemId::new(d),
            ValueId::new(v),
        )
    }

    #[test]
    fn index_counts_claims_per_source_per_item() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 1, 0, 0));
        b.push(obs(0, 1, 0, 1)); // source 1 claims two values for item 0
        b.push(obs(0, 0, 0, 0));
        b.push(obs(1, 0, 0, 0)); // second extractor: same group, not a new claim
        b.push(obs(0, 2, 1, 0));
        let cube = b.build();
        let idx = CoClaimIndex::build(&cube);
        assert_eq!(idx.num_items(), 2);
        assert_eq!(
            idx.item_sources(ItemId::new(0)),
            &[(SourceId::new(0), 1), (SourceId::new(1), 2)]
        );
        assert_eq!(idx.item_sources(ItemId::new(1)), &[(SourceId::new(2), 1)]);
    }

    #[test]
    fn pair_overlaps_use_claim_pair_counting() {
        let mut b = CubeBuilder::new();
        // Item 0: source 0 has 2 claims, source 1 has 1 → overlap 2.
        b.push(obs(0, 0, 0, 0));
        b.push(obs(0, 0, 0, 1));
        b.push(obs(0, 1, 0, 0));
        // Item 1: both claim once → +1.
        b.push(obs(0, 0, 1, 0));
        b.push(obs(0, 1, 1, 0));
        let cube = b.build();
        let idx = CoClaimIndex::build(&cube);
        let overlaps = idx.pair_overlaps();
        assert_eq!(overlaps, vec![((SourceId::new(0), SourceId::new(1)), 3)]);
    }

    #[test]
    fn candidate_pairs_prune_below_min_overlap() {
        let mut b = CubeBuilder::new();
        for d in 0..5u32 {
            b.push(obs(0, 0, d, 0));
            b.push(obs(0, 1, d, 0));
        }
        b.push(obs(0, 2, 0, 0)); // source 2 overlaps each of 0/1 on one item
        let cube = b.build();
        let idx = CoClaimIndex::build(&cube);
        assert_eq!(idx.pair_overlaps().len(), 3);
        let cands = idx.candidate_pairs(5);
        assert_eq!(cands.len(), 1);
        assert_eq!(
            cands[0],
            CandidatePair {
                a: SourceId::new(0),
                b: SourceId::new(1),
                overlap: 5
            }
        );
        assert!(idx.candidate_pairs(6).is_empty());
    }

    #[test]
    fn empty_cube_yields_empty_index() {
        let cube = CubeBuilder::new().build();
        let idx = CoClaimIndex::build(&cube);
        assert_eq!(idx.num_items(), 0);
        assert!(idx.pair_overlaps().is_empty());
        assert!(idx.candidate_pairs(0).is_empty());
    }
}
