//! # kbt-datamodel
//!
//! Core data model for the Knowledge-Based Trust (KBT) system of Dong et
//! al., *Knowledge-Based Trust: Estimating the Trustworthiness of Web
//! Sources*, VLDB 2015.
//!
//! This crate defines the vocabulary of the paper's Table 1:
//!
//! * a **web source** `w ∈ W` ([`SourceId`]) — a webpage, a website, or any
//!   intermediate granularity (see the `kbt-granularity` crate),
//! * an **extractor** `e ∈ E` ([`ExtractorId`]) — an information-extraction
//!   system, or an 〈extractor, pattern, predicate, website〉 provenance
//!   vector at the finest granularity,
//! * a **data item** `d` ([`ItemId`]) — a (subject, predicate) pair,
//! * a **value** `v` ([`ValueId`]) — the object of a triple,
//! * the **observation matrix** `X = {X_ewdv}` ([`ObservationCube`]) — the
//!   sparse "data cube" of Figure 1(b), one cell per (extractor, source,
//!   item, value) with an extraction confidence.
//!
//! The cube is stored columnar and sorted, grouped by `(w, d, v)`, so the
//! inference layers iterate cache-friendly without hashing in hot loops.

#![warn(missing_docs)]

pub mod chunked;
pub mod coclaim;
pub mod cube;
pub mod ids;
pub mod intern;
pub mod triple;
pub mod wire;

pub use chunked::{
    CacheStats, ChunkBuf, ChunkCache, ChunkSource, ChunkStoreMeta, ChunkedCube, ChunkingConfig,
    CubeChunk, FileChunkStore, GroupBuf, GroupView, ItemView,
};
pub use coclaim::{CandidatePair, CoClaimIndex};
pub use cube::{Cell, CubeBuilder, CubeShardStats, ObservationCube, TripleGroup};
pub use ids::{ExtractorId, ItemId, SourceId, ValueId};
pub use intern::{Interner, SymbolTable};
pub use triple::{DataItem, Observation, Triple};
pub use wire::{WireReader, WireTruncated};
