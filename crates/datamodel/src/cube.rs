//! The sparse observation "data cube" of Figure 1(b).
//!
//! The cube stores one [`Cell`] per nonzero `X_{ewdv}` entry, grouped by the
//! `(w, d, v)` triple it supports. Groups are sorted by
//! `(source, item, value)`, so all groups of one source are contiguous; a
//! secondary index lists the groups of each data item. This columnar layout
//! lets every inference stage stream the data it needs without hashing:
//!
//! * extraction-correctness (per-triple) — iterate [`ObservationCube::groups`],
//! * value inference (per-item) — iterate [`ObservationCube::groups_of_item`],
//! * source accuracy (per-source) — iterate [`ObservationCube::source_groups`],
//! * extractor quality — stream all cells once, accumulating per extractor.
//!
//! Absence votes (Eq. 13) need to know which extractors *could have*
//! extracted a triple but did not. At web scale not every extractor visits
//! every page, so the cube records, per source, the set of extractors that
//! extracted anything from it ([`ObservationCube::extractors_on_source`]);
//! the vote counter treats exactly those as the candidate set. This matches
//! the arithmetic of the paper's Example 3.1, where all five extractors are
//! active on every page of the example.

use std::ops::Range;

use crate::ids::{ExtractorId, ItemId, SourceId, ValueId};
use crate::triple::Observation;

/// One extraction supporting a triple group: which extractor, with what
/// confidence `p(X_ewdv = 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// The extractor that produced the extraction.
    pub extractor: ExtractorId,
    /// Soft-evidence confidence in `[0, 1]`.
    pub confidence: f64,
}

/// All extractions of one `(w, d, v)` triple — a row `X_wdv` of the cube.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TripleGroup {
    /// The web source.
    pub source: SourceId,
    /// The data item.
    pub item: ItemId,
    /// The value.
    pub value: ValueId,
    cells: Range<u32>,
}

impl TripleGroup {
    /// Range of this group's cells inside [`ObservationCube::cells`].
    pub fn cell_range(&self) -> Range<usize> {
        self.cells.start as usize..self.cells.end as usize
    }
}

/// Immutable, index-accelerated storage for the observation matrix `X`.
#[derive(Debug, Clone)]
pub struct ObservationCube {
    cells: Vec<Cell>,
    groups: Vec<TripleGroup>,
    /// Per source: contiguous range in `groups`.
    source_group_ranges: Vec<Range<u32>>,
    /// Group indices ordered by item; `item_offsets[d]..item_offsets[d+1]`.
    item_groups: Vec<u32>,
    item_offsets: Vec<u32>,
    /// CSR of sorted distinct extractors per source:
    /// `source_extractor_ids[source_extractor_offsets[w]..source_extractor_offsets[w+1]]`.
    /// One flat allocation instead of a `Vec<Vec<_>>` — cheap to build and
    /// to clone.
    source_extractor_offsets: Vec<u32>,
    source_extractor_ids: Vec<ExtractorId>,
    /// CSR of sorted distinct observed values per item:
    /// `item_values[item_value_offsets[d]..item_value_offsets[d+1]]`.
    /// Precomputed once at build so the value layer never re-sorts or
    /// dedups inside an EM round.
    item_value_offsets: Vec<u32>,
    item_values: Vec<ValueId>,
    num_extractors: u32,
    num_values: u32,
}

impl ObservationCube {
    /// Total number of nonzero cube cells (extractions).
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of distinct `(w, d, v)` triples with at least one extraction.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of sources (dense id space, including sources with no data).
    pub fn num_sources(&self) -> usize {
        self.source_group_ranges.len()
    }

    /// Number of extractors in the dense id space.
    pub fn num_extractors(&self) -> usize {
        self.num_extractors as usize
    }

    /// Number of data items in the dense id space.
    pub fn num_items(&self) -> usize {
        self.item_offsets.len().saturating_sub(1)
    }

    /// Number of values in the dense id space.
    pub fn num_values(&self) -> usize {
        self.num_values as usize
    }

    /// All triple groups, sorted by `(source, item, value)`.
    pub fn groups(&self) -> &[TripleGroup] {
        &self.groups
    }

    /// The cells of group `g`.
    pub fn cells_of(&self, g: &TripleGroup) -> &[Cell] {
        &self.cells[g.cell_range()]
    }

    /// Indices (into [`Self::groups`]) of the groups about data item `d`.
    pub fn groups_of_item(&self, d: ItemId) -> impl Iterator<Item = usize> + '_ {
        let lo = self.item_offsets[d.index()] as usize;
        let hi = self.item_offsets[d.index() + 1] as usize;
        self.item_groups[lo..hi].iter().map(|&g| g as usize)
    }

    /// The contiguous range of group indices belonging to source `w`.
    pub fn source_groups(&self, w: SourceId) -> Range<usize> {
        let r = &self.source_group_ranges[w.index()];
        r.start as usize..r.end as usize
    }

    /// Sorted distinct extractors that extracted anything from source `w` —
    /// the candidate set used for absence votes.
    pub fn extractors_on_source(&self, w: SourceId) -> &[ExtractorId] {
        let lo = self.source_extractor_offsets[w.index()] as usize;
        let hi = self.source_extractor_offsets[w.index() + 1] as usize;
        &self.source_extractor_ids[lo..hi]
    }

    /// Sorted distinct values observed (by any source) for item `d`, as a
    /// borrowed slice of the precomputed item→values CSR index. The slot
    /// of a value within this slice is the dense per-item "value slot" the
    /// columnar E-step indexes its accumulators with.
    pub fn observed_values(&self, d: ItemId) -> &[ValueId] {
        let lo = self.item_value_offsets[d.index()] as usize;
        let hi = self.item_value_offsets[d.index() + 1] as usize;
        &self.item_values[lo..hi]
    }

    /// Distinct values observed (by any source) for item `d`, sorted.
    pub fn observed_values_of_item(&self, d: ItemId) -> Vec<ValueId> {
        let mut vs = Vec::new();
        self.observed_values_into(d, &mut vs);
        vs
    }

    /// Collect the distinct observed values of item `d`, sorted, into a
    /// caller-provided buffer (cleared first, capacity retained) — the
    /// allocation-free form the value layer uses once per item per EM
    /// round. Copies from the CSR index built at cube-assembly time
    /// instead of re-sorting and deduping the item's groups per call.
    pub fn observed_values_into(&self, d: ItemId, out: &mut Vec<ValueId>) {
        out.clear();
        out.extend_from_slice(self.observed_values(d));
        #[cfg(debug_assertions)]
        {
            let mut check: Vec<ValueId> = self
                .groups_of_item(d)
                .map(|g| self.groups[g].value)
                .collect();
            check.sort_unstable();
            check.dedup();
            debug_assert_eq!(*out, check, "item-values CSR out of sync for item {d:?}");
        }
    }

    /// Number of triples (groups) attributed to source `w`.
    pub fn source_size(&self, w: SourceId) -> usize {
        self.source_groups(w).len()
    }

    /// Iterate `(group index, group, cells)` for all groups.
    pub fn iter_with_cells(&self) -> impl Iterator<Item = (usize, &TripleGroup, &[Cell])> + '_ {
        self.groups
            .iter()
            .enumerate()
            .map(move |(i, g)| (i, g, self.cells_of(g)))
    }

    /// Build the per-extractor cell index: for each extractor, the
    /// `(group index, cell index)` pairs of its extractions, in group
    /// order. Used by the per-extractor parallel M-step (the Map-Reduce
    /// sharding of Section 3.4.2 keys extractor-quality computation by
    /// extractor, which is why oversized extractors become stragglers —
    /// Table 7).
    pub fn build_extractor_index(&self) -> Vec<Vec<(u32, u32)>> {
        let mut index: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.num_extractors()];
        for (g, grp) in self.groups.iter().enumerate() {
            let range = grp.cell_range();
            for (ci, cell) in self.cells[range.clone()].iter().enumerate() {
                index[cell.extractor.index()].push((g as u32, (range.start + ci) as u32));
            }
        }
        index
    }

    /// The cell at a raw cell index (for use with
    /// [`Self::build_extractor_index`]).
    pub fn cell(&self, idx: u32) -> &Cell {
        &self.cells[idx as usize]
    }

    /// Merge `delta` into this cube **without re-sorting the existing
    /// layout**: the delta alone is sorted (`O(m log m)` for `m` delta
    /// rows) and merge-walked against the already-sorted group list
    /// (`O(groups + cells)`), then the secondary indexes are rebuilt in
    /// one linear pass. The result is bit-identical to rebuilding a
    /// [`CubeBuilder`] from the union of all observations (duplicate
    /// `(e, w, d, v)` entries keep the maximum confidence, exactly as
    /// [`CubeBuilder::build`] does) — the `session_incremental` proptest
    /// pins this equivalence down.
    ///
    /// Dense id spaces grow to cover the delta; existing (possibly
    /// reserved) sizes are never shrunk.
    pub fn apply_delta(&self, delta: &[Observation]) -> ObservationCube {
        if delta.is_empty() {
            return self.clone();
        }
        let mut d: Vec<Observation> = delta
            .iter()
            .map(|o| {
                let mut o = *o;
                o.confidence = o.confidence.clamp(0.0, 1.0);
                o
            })
            .collect();
        d.sort_unstable_by_key(|o| (o.source, o.item, o.value, o.extractor));

        let mut num_sources = self.num_sources() as u32;
        let mut num_extractors = self.num_extractors;
        let mut num_items = self.num_items() as u32;
        let mut num_values = self.num_values;
        for o in &d {
            num_sources = num_sources.max(o.source.0 + 1);
            num_extractors = num_extractors.max(o.extractor.0 + 1);
            num_items = num_items.max(o.item.0 + 1);
            num_values = num_values.max(o.value.0 + 1);
        }

        let mut cells: Vec<Cell> = Vec::with_capacity(self.cells.len() + d.len());
        let mut groups: Vec<TripleGroup> = Vec::with_capacity(self.groups.len() + d.len());
        let mut gi = 0; // cursor over existing groups
        let mut di = 0; // cursor over sorted delta observations

        // Consume one delta run (all rows of one (w, d, v) key), merging
        // same-extractor duplicates with max confidence, optionally
        // interleaving with the cells of an equal-key existing group.
        let push_merged =
            |cells: &mut Vec<Cell>, old: Option<&[Cell]>, d: &[Observation], di: &mut usize| {
                let key = (d[*di].source, d[*di].item, d[*di].value);
                let start = cells.len() as u32;
                let mut old_cells = old.unwrap_or(&[]).iter().peekable();
                while *di < d.len() {
                    let o = d[*di];
                    if (o.source, o.item, o.value) != key {
                        break;
                    }
                    let mut conf = o.confidence;
                    *di += 1;
                    while *di < d.len() {
                        let p = d[*di];
                        if (p.source, p.item, p.value, p.extractor)
                            != (o.source, o.item, o.value, o.extractor)
                        {
                            break;
                        }
                        conf = conf.max(p.confidence);
                        *di += 1;
                    }
                    // Existing cells are sorted by extractor: emit the ones
                    // strictly before this delta extractor, then merge equals.
                    while let Some(c) = old_cells.peek() {
                        if c.extractor < o.extractor {
                            cells.push(**c);
                            old_cells.next();
                        } else {
                            break;
                        }
                    }
                    if let Some(c) = old_cells.peek() {
                        if c.extractor == o.extractor {
                            conf = conf.max(c.confidence);
                            old_cells.next();
                        }
                    }
                    cells.push(Cell {
                        extractor: o.extractor,
                        confidence: conf,
                    });
                }
                for c in old_cells {
                    cells.push(*c);
                }
                (key, start..cells.len() as u32)
            };

        while gi < self.groups.len() || di < d.len() {
            let old_key = self.groups.get(gi).map(|g| (g.source, g.item, g.value));
            let new_key = d.get(di).map(|o| (o.source, o.item, o.value));
            let ord = match (old_key, new_key) {
                (Some(ok), Some(nk)) => ok.cmp(&nk),
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => unreachable!("loop condition"),
            };
            match ord {
                std::cmp::Ordering::Less => {
                    // Untouched existing group: copy cells verbatim.
                    let grp = &self.groups[gi];
                    let start = cells.len() as u32;
                    cells.extend_from_slice(&self.cells[grp.cell_range()]);
                    groups.push(TripleGroup {
                        source: grp.source,
                        item: grp.item,
                        value: grp.value,
                        cells: start..cells.len() as u32,
                    });
                    gi += 1;
                }
                std::cmp::Ordering::Greater => {
                    // Brand-new group from the delta.
                    let ((source, item, value), range) = push_merged(&mut cells, None, &d, &mut di);
                    groups.push(TripleGroup {
                        source,
                        item,
                        value,
                        cells: range,
                    });
                }
                std::cmp::Ordering::Equal => {
                    // Same key on both sides: merge cell lists.
                    let grp = &self.groups[gi];
                    let ((source, item, value), range) =
                        push_merged(&mut cells, Some(&self.cells[grp.cell_range()]), &d, &mut di);
                    groups.push(TripleGroup {
                        source,
                        item,
                        value,
                        cells: range,
                    });
                    gi += 1;
                }
            }
        }

        assemble_cube(
            cells,
            groups,
            num_sources,
            num_extractors,
            num_items,
            num_values,
        )
    }

    /// Remove every triple group matching one of `retractions` — the
    /// **negative delta** of an incremental-fusion round (a source took a
    /// page down, an extractor's pattern was fixed, a value was renamed
    /// away). All cells of a matching `(source, item, value)` group are
    /// dropped; unknown triples are ignored.
    ///
    /// The result is canonical: bit-identical to rebuilding a
    /// [`CubeBuilder`] from the surviving observations, so every
    /// downstream invariant (item index ⊇ group values, source ranges,
    /// extractor candidate sets) holds again after a retraction — the
    /// `serve` stress tests and the `FusionSession::retract` regression
    /// tests rely on this. Dense id spaces are **never shrunk**: a
    /// retracted source keeps its id (and its default parameters), so
    /// per-source state carried across refits stays aligned.
    pub fn retract(&self, retractions: &[(SourceId, ItemId, ValueId)]) -> ObservationCube {
        if retractions.is_empty() {
            return self.clone();
        }
        let mut keys: Vec<(SourceId, ItemId, ValueId)> = retractions.to_vec();
        keys.sort_unstable();
        keys.dedup();

        let mut cells: Vec<Cell> = Vec::with_capacity(self.cells.len());
        let mut groups: Vec<TripleGroup> = Vec::with_capacity(self.groups.len());
        let mut ki = 0;
        for grp in &self.groups {
            let key = (grp.source, grp.item, grp.value);
            // Both lists are sorted by (source, item, value): one walk.
            while ki < keys.len() && keys[ki] < key {
                ki += 1;
            }
            if ki < keys.len() && keys[ki] == key {
                continue; // retracted
            }
            let start = cells.len() as u32;
            cells.extend_from_slice(&self.cells[grp.cell_range()]);
            groups.push(TripleGroup {
                source: grp.source,
                item: grp.item,
                value: grp.value,
                cells: start..cells.len() as u32,
            });
        }

        assemble_cube(
            cells,
            groups,
            self.num_sources() as u32,
            self.num_extractors,
            self.num_items() as u32,
            self.num_values,
        )
    }

    /// Approximate resident size of the cube in bytes (vector payloads
    /// only, no allocator overhead) — the input to the bench bins'
    /// peak-memory estimates.
    pub fn approx_bytes(&self) -> usize {
        self.cells.len() * std::mem::size_of::<Cell>()
            + self.groups.len() * std::mem::size_of::<TripleGroup>()
            + self.source_group_ranges.len() * std::mem::size_of::<Range<u32>>()
            + (self.item_groups.len()
                + self.item_offsets.len()
                + self.source_extractor_offsets.len()
                + self.source_extractor_ids.len()
                + self.item_value_offsets.len()
                + self.item_values.len())
                * 4
    }

    /// Partition the group list into `shards` contiguous ranges (the key
    /// ranges a [`kbt_flume::ShardedExecutor`]-style engine would hand to
    /// its workers) and report per-shard load — the skew diagnostic behind
    /// the paper's Table 7 straggler discussion.
    ///
    /// [`kbt_flume::ShardedExecutor`]: https://docs.rs/kbt-flume
    pub fn shard_stats(&self, shards: usize) -> Vec<CubeShardStats> {
        if self.groups.is_empty() {
            return Vec::new();
        }
        let shards = shards.max(1).min(self.groups.len());
        let chunk = self.groups.len().div_ceil(shards);
        (0..shards)
            .map(|i| {
                let lo = (i * chunk).min(self.groups.len());
                let hi = ((i + 1) * chunk).min(self.groups.len());
                let cells = if lo < hi {
                    (self.groups[hi - 1].cells.end - self.groups[lo].cells.start) as usize
                } else {
                    0
                };
                let sources = if lo < hi {
                    (self.groups[lo].source.0..=self.groups[hi - 1].source.0).count()
                } else {
                    0
                };
                CubeShardStats {
                    shard: i,
                    groups: lo..hi,
                    cells,
                    sources,
                }
            })
            .filter(|s| !s.groups.is_empty())
            .collect()
    }
}

/// Load statistics of one contiguous group-range shard
/// (see [`ObservationCube::shard_stats`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CubeShardStats {
    /// Shard index.
    pub shard: usize,
    /// The contiguous range of group indices the shard covers.
    pub groups: Range<usize>,
    /// Number of cube cells (extractions) inside those groups.
    pub cells: usize,
    /// Width of the source-id span the shard touches (groups are sorted
    /// by source, so this bounds the number of distinct sources).
    pub sources: usize,
}

/// Build the secondary indexes over sorted `(cells, groups)` — shared by
/// [`CubeBuilder::build`] (full sort) and [`ObservationCube::apply_delta`]
/// (merge-walk). One linear pass over groups plus a counting sort of the
/// item index.
fn assemble_cube(
    cells: Vec<Cell>,
    groups: Vec<TripleGroup>,
    num_sources: u32,
    num_extractors: u32,
    num_items: u32,
    num_values: u32,
) -> ObservationCube {
    // Source ranges over the (source-sorted) group list, plus the
    // per-source extractor candidate sets in CSR form. A scratch buffer
    // collects one source's extractors, sort+dedup runs per source, and
    // the result lands in one flat allocation.
    let ns = num_sources as usize;
    let mut source_group_ranges = vec![0u32..0u32; ns];
    let mut per_source_ext: Vec<Vec<ExtractorId>> = vec![Vec::new(); ns];
    let mut g = 0;
    while g < groups.len() {
        let w = groups[g].source;
        let start = g as u32;
        let mut ext: Vec<ExtractorId> = Vec::new();
        while g < groups.len() && groups[g].source == w {
            for c in &cells[groups[g].cell_range()] {
                ext.push(c.extractor);
            }
            g += 1;
        }
        ext.sort_unstable();
        ext.dedup();
        source_group_ranges[w.index()] = start..g as u32;
        per_source_ext[w.index()] = ext;
    }
    let mut source_extractor_offsets = Vec::with_capacity(ns + 1);
    source_extractor_offsets.push(0u32);
    let total_ext: usize = per_source_ext.iter().map(Vec::len).sum();
    let mut source_extractor_ids = Vec::with_capacity(total_ext);
    for ext in &per_source_ext {
        source_extractor_ids.extend_from_slice(ext);
        source_extractor_offsets.push(source_extractor_ids.len() as u32);
    }
    drop(per_source_ext);

    // Item index: counting sort of group indices by item.
    let ni = num_items as usize;
    let mut item_offsets = vec![0u32; ni + 1];
    for grp in &groups {
        item_offsets[grp.item.index() + 1] += 1;
    }
    for k in 0..ni {
        item_offsets[k + 1] += item_offsets[k];
    }
    let mut cursor = item_offsets.clone();
    let mut item_groups = vec![0u32; groups.len()];
    for (gi, grp) in groups.iter().enumerate() {
        let slot = &mut cursor[grp.item.index()];
        item_groups[*slot as usize] = gi as u32;
        *slot += 1;
    }

    // Item → sorted distinct observed values, CSR. Groups of one item are
    // visited in group order (sources ascending); each item's value list
    // is small, so a per-item sort+dedup in a scratch run is linearish.
    let mut item_value_offsets = Vec::with_capacity(ni + 1);
    item_value_offsets.push(0u32);
    let mut item_values: Vec<ValueId> = Vec::new();
    let mut scratch: Vec<ValueId> = Vec::new();
    for d in 0..ni {
        scratch.clear();
        let lo = item_offsets[d] as usize;
        let hi = item_offsets[d + 1] as usize;
        scratch.extend(
            item_groups[lo..hi]
                .iter()
                .map(|&g| groups[g as usize].value),
        );
        scratch.sort_unstable();
        scratch.dedup();
        item_values.extend_from_slice(&scratch);
        item_value_offsets.push(item_values.len() as u32);
    }

    ObservationCube {
        cells,
        groups,
        source_group_ranges,
        item_groups,
        item_offsets,
        source_extractor_offsets,
        source_extractor_ids,
        item_value_offsets,
        item_values,
        num_extractors,
        num_values,
    }
}

/// Accumulates raw [`Observation`]s and freezes them into an
/// [`ObservationCube`].
///
/// Duplicate `(e, w, d, v)` entries are merged keeping the maximum
/// confidence (an extractor may fire the same pattern twice on one page).
#[derive(Debug, Default)]
pub struct CubeBuilder {
    obs: Vec<Observation>,
    num_sources: u32,
    num_extractors: u32,
    num_items: u32,
    num_values: u32,
}

impl CubeBuilder {
    /// Create an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of buffered observations (before dedup).
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True when no observation has been added.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// Pre-allocate for `n` observations.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            obs: Vec::with_capacity(n),
            ..Self::default()
        }
    }

    /// Add one observation. Confidence is clamped to `[0, 1]`.
    pub fn push(&mut self, mut o: Observation) -> &mut Self {
        o.confidence = o.confidence.clamp(0.0, 1.0);
        self.num_sources = self.num_sources.max(o.source.0 + 1);
        self.num_extractors = self.num_extractors.max(o.extractor.0 + 1);
        self.num_items = self.num_items.max(o.item.0 + 1);
        self.num_values = self.num_values.max(o.value.0 + 1);
        self.obs.push(o);
        self
    }

    /// Declare the dense id-space sizes explicitly (useful when some ids
    /// carry no observations but parameters must still exist for them).
    pub fn reserve_ids(
        &mut self,
        sources: u32,
        extractors: u32,
        items: u32,
        values: u32,
    ) -> &mut Self {
        self.num_sources = self.num_sources.max(sources);
        self.num_extractors = self.num_extractors.max(extractors);
        self.num_items = self.num_items.max(items);
        self.num_values = self.num_values.max(values);
        self
    }

    /// Sort, dedup, group, and index the observations.
    pub fn build(mut self) -> ObservationCube {
        self.obs
            .sort_unstable_by_key(|o| (o.source, o.item, o.value, o.extractor));
        // Merge duplicates keeping max confidence.
        let mut cells: Vec<Cell> = Vec::with_capacity(self.obs.len());
        let mut groups: Vec<TripleGroup> = Vec::new();
        let mut i = 0;
        while i < self.obs.len() {
            let head = self.obs[i];
            let group_start = cells.len() as u32;
            let mut j = i;
            while j < self.obs.len() {
                let o = self.obs[j];
                if (o.source, o.item, o.value) != (head.source, head.item, head.value) {
                    break;
                }
                // Within the group, runs of the same extractor merge.
                let mut conf = o.confidence;
                let mut k = j + 1;
                while k < self.obs.len() {
                    let p = self.obs[k];
                    if (p.source, p.item, p.value, p.extractor)
                        != (o.source, o.item, o.value, o.extractor)
                    {
                        break;
                    }
                    conf = conf.max(p.confidence);
                    k += 1;
                }
                cells.push(Cell {
                    extractor: o.extractor,
                    confidence: conf,
                });
                j = k;
            }
            groups.push(TripleGroup {
                source: head.source,
                item: head.item,
                value: head.value,
                cells: group_start..cells.len() as u32,
            });
            i = j;
        }
        drop(self.obs);

        assemble_cube(
            cells,
            groups,
            self.num_sources,
            self.num_extractors,
            self.num_items,
            self.num_values,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(e: u32, w: u32, d: u32, v: u32, c: f64) -> Observation {
        Observation {
            extractor: ExtractorId::new(e),
            source: SourceId::new(w),
            item: ItemId::new(d),
            value: ValueId::new(v),
            confidence: c,
        }
    }

    #[test]
    fn build_groups_by_triple() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 1.0));
        b.push(obs(1, 0, 0, 0, 1.0));
        b.push(obs(0, 0, 0, 1, 1.0));
        b.push(obs(0, 1, 0, 0, 1.0));
        let cube = b.build();
        assert_eq!(cube.num_groups(), 3);
        assert_eq!(cube.num_cells(), 4);
        let g0 = &cube.groups()[0];
        assert_eq!((g0.source.0, g0.item.0, g0.value.0), (0, 0, 0));
        assert_eq!(cube.cells_of(g0).len(), 2);
    }

    #[test]
    fn duplicates_merge_keeping_max_confidence() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 0.3));
        b.push(obs(0, 0, 0, 0, 0.9));
        b.push(obs(0, 0, 0, 0, 0.5));
        let cube = b.build();
        assert_eq!(cube.num_cells(), 1);
        assert_eq!(cube.cells_of(&cube.groups()[0])[0].confidence, 0.9);
    }

    #[test]
    fn source_ranges_are_contiguous_and_complete() {
        let mut b = CubeBuilder::new();
        for w in 0..3u32 {
            for d in 0..4u32 {
                b.push(obs(0, w, d, d, 1.0));
            }
        }
        let cube = b.build();
        for w in 0..3u32 {
            let r = cube.source_groups(SourceId::new(w));
            assert_eq!(r.len(), 4);
            for g in r {
                assert_eq!(cube.groups()[g].source, SourceId::new(w));
            }
        }
    }

    #[test]
    fn item_index_finds_all_groups_of_item() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 7, 1, 1.0));
        b.push(obs(0, 1, 7, 2, 1.0));
        b.push(obs(0, 2, 3, 1, 1.0));
        let cube = b.build();
        let gs: Vec<usize> = cube.groups_of_item(ItemId::new(7)).collect();
        assert_eq!(gs.len(), 2);
        for g in gs {
            assert_eq!(cube.groups()[g].item, ItemId::new(7));
        }
        assert_eq!(cube.groups_of_item(ItemId::new(3)).count(), 1);
    }

    #[test]
    fn source_extractor_candidate_sets() {
        let mut b = CubeBuilder::new();
        b.push(obs(2, 0, 0, 0, 1.0));
        b.push(obs(0, 0, 1, 0, 1.0));
        b.push(obs(1, 1, 0, 0, 1.0));
        let cube = b.build();
        assert_eq!(
            cube.extractors_on_source(SourceId::new(0)),
            &[ExtractorId::new(0), ExtractorId::new(2)]
        );
        assert_eq!(
            cube.extractors_on_source(SourceId::new(1)),
            &[ExtractorId::new(1)]
        );
    }

    #[test]
    fn observed_values_are_sorted_distinct() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 5, 1.0));
        b.push(obs(0, 1, 0, 2, 1.0));
        b.push(obs(1, 2, 0, 5, 1.0));
        let cube = b.build();
        assert_eq!(
            cube.observed_values_of_item(ItemId::new(0)),
            vec![ValueId::new(2), ValueId::new(5)]
        );
    }

    #[test]
    fn reserve_ids_extends_dense_spaces() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 1.0));
        b.reserve_ids(10, 5, 7, 9);
        let cube = b.build();
        assert_eq!(cube.num_sources(), 10);
        assert_eq!(cube.num_extractors(), 5);
        assert_eq!(cube.num_items(), 7);
        assert_eq!(cube.num_values(), 9);
        assert_eq!(cube.source_size(SourceId::new(9)), 0);
    }

    /// `apply_delta` must be indistinguishable from a full rebuild over
    /// the union of the observations.
    fn assert_cubes_identical(a: &ObservationCube, b: &ObservationCube) {
        assert_eq!(a.groups(), b.groups());
        assert_eq!(a.num_cells(), b.num_cells());
        for (ga, gb) in a.groups().iter().zip(b.groups()) {
            assert_eq!(a.cells_of(ga), b.cells_of(gb));
        }
        assert_eq!(a.num_sources(), b.num_sources());
        assert_eq!(a.num_extractors(), b.num_extractors());
        assert_eq!(a.num_items(), b.num_items());
        assert_eq!(a.num_values(), b.num_values());
        for w in 0..a.num_sources() {
            let w = SourceId::new(w as u32);
            assert_eq!(a.source_groups(w), b.source_groups(w));
            assert_eq!(a.extractors_on_source(w), b.extractors_on_source(w));
        }
        for d in 0..a.num_items() {
            let d = ItemId::new(d as u32);
            assert_eq!(
                a.groups_of_item(d).collect::<Vec<_>>(),
                b.groups_of_item(d).collect::<Vec<_>>()
            );
            assert_eq!(a.observed_values(d), b.observed_values(d));
        }
    }

    #[test]
    fn apply_delta_matches_full_rebuild() {
        let base = vec![
            obs(0, 1, 0, 0, 1.0),
            obs(1, 1, 0, 0, 0.5),
            obs(0, 0, 2, 1, 0.9),
            obs(2, 3, 1, 0, 1.0),
        ];
        let delta = vec![
            obs(1, 1, 0, 0, 0.8), // merges into an existing cell (max conf)
            obs(2, 1, 0, 0, 1.0), // new cell in an existing group
            obs(0, 1, 0, 1, 1.0), // new group of an existing source
            obs(0, 2, 0, 0, 0.7), // source with no prior groups
            obs(3, 4, 5, 6, 1.0), // grows every id space
            obs(3, 4, 5, 6, 0.2), // duplicate keeps max confidence
        ];
        let mut b = CubeBuilder::new();
        for o in &base {
            b.push(*o);
        }
        let incremental = b.build().apply_delta(&delta);
        let mut full = CubeBuilder::new();
        for o in base.iter().chain(&delta) {
            full.push(*o);
        }
        assert_cubes_identical(&incremental, &full.build());
    }

    #[test]
    fn apply_delta_empty_is_identity_and_preserves_reservations() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 1.0));
        b.reserve_ids(9, 4, 6, 8);
        let cube = b.build();
        let same = cube.apply_delta(&[]);
        assert_cubes_identical(&cube, &same);
        // Reserved sizes survive a non-empty delta too.
        let grown = cube.apply_delta(&[obs(0, 1, 1, 1, 1.0)]);
        assert_eq!(grown.num_sources(), 9);
        assert_eq!(grown.num_extractors(), 4);
        assert_eq!(grown.num_items(), 6);
        assert_eq!(grown.num_values(), 8);
        assert_eq!(grown.num_groups(), 2);
    }

    #[test]
    fn apply_delta_onto_empty_cube() {
        let cube = CubeBuilder::new().build();
        let delta = vec![obs(0, 0, 0, 0, 0.4), obs(1, 0, 0, 0, 1.0)];
        let grown = cube.apply_delta(&delta);
        let mut full = CubeBuilder::new();
        for o in &delta {
            full.push(*o);
        }
        assert_cubes_identical(&grown, &full.build());
    }

    /// `retract` must be indistinguishable from rebuilding the cube from
    /// the surviving observations (with the id spaces held fixed).
    #[test]
    fn retract_matches_rebuild_of_survivors() {
        let base = vec![
            obs(0, 1, 0, 0, 1.0),
            obs(1, 1, 0, 0, 0.5),
            obs(0, 0, 2, 1, 0.9),
            obs(2, 3, 1, 0, 1.0),
            obs(0, 3, 1, 2, 0.8),
        ];
        let mut b = CubeBuilder::new();
        for o in &base {
            b.push(*o);
        }
        let cube = b.build();
        // Retract one multi-cell group, one single-cell group, and one
        // triple that does not exist (ignored).
        let retracted = cube.retract(&[
            (SourceId::new(1), ItemId::new(0), ValueId::new(0)),
            (SourceId::new(3), ItemId::new(1), ValueId::new(2)),
            (SourceId::new(9), ItemId::new(9), ValueId::new(9)),
        ]);
        let mut survivors = CubeBuilder::new();
        for o in &base {
            if (o.source.0, o.item.0, o.value.0) != (1, 0, 0)
                && (o.source.0, o.item.0, o.value.0) != (3, 1, 2)
            {
                survivors.push(*o);
            }
        }
        // Id spaces are preserved even when a retraction empties a source.
        survivors.reserve_ids(4, 3, 3, 3);
        assert_cubes_identical(&retracted, &survivors.build());
        assert_eq!(retracted.source_size(SourceId::new(1)), 0);
        assert!(retracted.extractors_on_source(SourceId::new(1)).is_empty());
    }

    #[test]
    fn retract_empty_and_unknown_are_identity() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 1.0));
        let cube = b.build();
        assert_cubes_identical(&cube, &cube.retract(&[]));
        assert_cubes_identical(
            &cube,
            &cube.retract(&[(SourceId::new(5), ItemId::new(5), ValueId::new(5))]),
        );
        // Duplicate retraction keys collapse to one removal.
        let gone = cube.retract(&[
            (SourceId::new(0), ItemId::new(0), ValueId::new(0)),
            (SourceId::new(0), ItemId::new(0), ValueId::new(0)),
        ]);
        assert_eq!(gone.num_groups(), 0);
        assert_eq!(gone.num_cells(), 0);
        assert_eq!(gone.num_sources(), 1, "id spaces never shrink");
    }

    #[test]
    fn retract_then_apply_delta_roundtrip() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 0.4));
        b.push(obs(1, 0, 0, 0, 0.9));
        b.push(obs(0, 1, 1, 1, 1.0));
        let cube = b.build();
        let key = (SourceId::new(0), ItemId::new(0), ValueId::new(0));
        let removed = cube.retract(&[key]);
        assert_eq!(removed.num_groups(), 1);
        // Re-adding the triple after retraction behaves like a fresh group.
        let back = removed.apply_delta(&[obs(0, 0, 0, 0, 0.7)]);
        assert_eq!(back.num_groups(), 2);
        let g0 = &back.groups()[0];
        assert_eq!((g0.source, g0.item, g0.value), key);
        assert_eq!(
            back.cells_of(g0),
            &[Cell {
                extractor: ExtractorId::new(0),
                confidence: 0.7
            }]
        );
    }

    #[test]
    fn shard_stats_partition_all_groups_and_cells() {
        let mut b = CubeBuilder::new();
        for w in 0..5u32 {
            for d in 0..7u32 {
                for e in 0..(1 + w % 3) {
                    b.push(obs(e, w, d, 0, 1.0));
                }
            }
        }
        let cube = b.build();
        for shards in [1usize, 2, 4, 16, 64] {
            let stats = cube.shard_stats(shards);
            assert!(stats.len() <= shards.max(1));
            let mut next = 0;
            let mut cells = 0;
            for s in &stats {
                assert_eq!(s.groups.start, next);
                next = s.groups.end;
                cells += s.cells;
                assert!(s.sources >= 1);
            }
            assert_eq!(next, cube.num_groups(), "shards = {shards}");
            assert_eq!(cells, cube.num_cells(), "shards = {shards}");
        }
        assert!(CubeBuilder::new().build().shard_stats(4).is_empty());
    }

    #[test]
    fn confidence_is_clamped() {
        let mut b = CubeBuilder::new();
        b.push(obs(0, 0, 0, 0, 1.7));
        b.push(obs(0, 0, 0, 1, -0.2));
        let cube = b.build();
        let confs: Vec<f64> = cube
            .iter_with_cells()
            .flat_map(|(_, _, cs)| cs.iter().map(|c| c.confidence))
            .collect();
        assert_eq!(confs, vec![1.0, 0.0]);
    }
}
