//! String interning for entity, predicate, URL, and value names.
//!
//! The inference layers work purely on dense `u32` ids; the interner is the
//! boundary where external names (Freebase mids, URLs, literal strings) are
//! mapped to ids once at load time. Lookup is hash-based; resolution is an
//! array index into a single arena of bytes, so a populated interner costs
//! one allocation per ~64 KiB of names rather than one per name.

use std::collections::HashMap;
use std::fmt;

/// A monotonically growing map from strings to dense `u32` symbols.
///
/// ```
/// use kbt_datamodel::Interner;
/// let mut i = Interner::new();
/// let a = i.intern("wiki.com/page1");
/// let b = i.intern("wiki.com/page2");
/// assert_ne!(a, b);
/// assert_eq!(i.intern("wiki.com/page1"), a);
/// assert_eq!(i.resolve(a), "wiki.com/page1");
/// ```
#[derive(Default)]
pub struct Interner {
    map: HashMap<Box<str>, u32>,
    // (offset, len) into `arena` chunks flattened logically; we keep spans
    // pointing into chunk index + range.
    spans: Vec<(u32, u32, u32)>, // (chunk, start, end)
    chunks: Vec<String>,
}

const CHUNK_SIZE: usize = 64 * 1024;

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Intern `s`, returning its stable symbol. Idempotent.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let needs_new_chunk = match self.chunks.last() {
            Some(c) => c.len() + s.len() > c.capacity(),
            None => true,
        };
        if needs_new_chunk {
            self.chunks
                .push(String::with_capacity(CHUNK_SIZE.max(s.len())));
        }
        let chunk_idx = (self.chunks.len() - 1) as u32;
        let chunk = self.chunks.last_mut().expect("chunk just pushed");
        let start = chunk.len() as u32;
        chunk.push_str(s);
        let end = chunk.len() as u32;
        let sym = self.spans.len() as u32;
        self.spans.push((chunk_idx, start, end));
        self.map.insert(Box::from(s), sym);
        sym
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` was not produced by this interner.
    pub fn resolve(&self, sym: u32) -> &str {
        let (chunk, start, end) = self.spans[sym as usize];
        &self.chunks[chunk as usize][start as usize..end as usize]
    }

    /// Look up a string without interning it.
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner")
            .field("len", &self.len())
            .finish()
    }
}

/// The set of interners for one corpus: one per cube axis.
///
/// Keeping the axes separate keeps each symbol space dense, which the
/// inference code relies on for direct-indexed parameter vectors.
#[derive(Default, Debug)]
pub struct SymbolTable {
    /// Source names (URLs or 〈website, predicate, webpage〉 keys).
    pub sources: Interner,
    /// Extractor names (or provenance-vector keys).
    pub extractors: Interner,
    /// Data-item names, conventionally `"subject|predicate"`.
    pub items: Interner,
    /// Value names.
    pub values: Interner,
}

impl SymbolTable {
    /// Create an empty symbol table.
    pub fn new() -> Self {
        Self::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let mut i = Interner::new();
        let syms: Vec<u32> = (0..100).map(|k| i.intern(&format!("s{k}"))).collect();
        assert_eq!(syms, (0..100).collect::<Vec<u32>>());
        for (k, &sym) in syms.iter().enumerate() {
            assert_eq!(i.intern(&format!("s{k}")), sym);
            assert_eq!(i.resolve(sym), format!("s{k}"));
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn long_strings_exceeding_chunk_size_survive() {
        let mut i = Interner::new();
        let long = "a".repeat(200_000);
        let a = i.intern(&long);
        let b = i.intern("short");
        assert_eq!(i.resolve(a), long);
        assert_eq!(i.resolve(b), "short");
    }

    #[test]
    fn symbol_table_axes_are_independent() {
        let mut t = SymbolTable::new();
        let w = t.sources.intern("wiki.com");
        let e = t.extractors.intern("wiki.com");
        assert_eq!(w, 0);
        assert_eq!(e, 0); // same string, different axis, both dense from 0
    }
}
