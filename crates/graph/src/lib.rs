//! # kbt-graph
//!
//! Web-graph substrate and PageRank — the *exogenous* quality signal the
//! paper contrasts KBT with (Section 1, Section 5.4.1, Figure 10).
//!
//! PageRank captures popularity, not correctness: the paper's running
//! example is gossip sites with top-15% PageRank but bottom-50% KBT. To
//! reproduce Figure 10 we need (a) a PageRank implementation and (b) a web
//! graph whose link structure is *independent* of factual quality; the
//! preferential-attachment generator in [`generator`] provides exactly
//! that.

#![warn(missing_docs)]

pub mod generator;
pub mod pagerank;

pub use generator::{preferential_attachment, WebGraphConfig};
pub use pagerank::{normalize_unit, pagerank, PageRankConfig, WebGraph};
