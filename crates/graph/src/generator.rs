//! Synthetic web-graph generation.
//!
//! Preferential attachment (Barabási–Albert flavored) produces the
//! heavy-tailed in-degree — and hence PageRank — distribution of the real
//! web. Crucially for Figure 10, link popularity here carries *no*
//! information about a site's factual accuracy, which is assigned
//! independently by the corpus simulator.

/// Configuration for the preferential-attachment generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebGraphConfig {
    /// Number of nodes (websites).
    pub num_nodes: usize,
    /// Out-links added per new node.
    pub edges_per_node: usize,
    /// RNG seed (the generator is fully deterministic given the seed).
    pub seed: u64,
}

impl Default for WebGraphConfig {
    fn default() -> Self {
        Self {
            num_nodes: 1000,
            edges_per_node: 4,
            seed: 42,
        }
    }
}

/// Tiny deterministic xorshift RNG (keeps this crate dependency-free).
#[derive(Debug, Clone)]
pub(crate) struct XorShift(u64);

impl XorShift {
    pub(crate) fn new(seed: u64) -> Self {
        Self(seed.max(1))
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    pub(crate) fn next_usize(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Generate an edge list by preferential attachment: each new node links
/// to `edges_per_node` existing nodes chosen proportionally to their
/// current in-degree (plus one).
pub fn preferential_attachment(cfg: &WebGraphConfig) -> Vec<(u32, u32)> {
    let mut rng = XorShift::new(cfg.seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(cfg.num_nodes * cfg.edges_per_node);
    // Repeated-targets trick: sample uniformly from the multiset of all
    // edge endpoints ∪ node ids, which realizes degree-proportional choice.
    let mut endpoints: Vec<u32> = Vec::with_capacity(edges.capacity() + cfg.num_nodes);
    for v in 0..cfg.num_nodes as u32 {
        endpoints.push(v); // the +1 smoothing term
        if v == 0 {
            continue;
        }
        let m = cfg.edges_per_node.min(v as usize);
        for _ in 0..m {
            let t = endpoints[rng.next_usize(endpoints.len())];
            if t == v {
                continue; // no self-link; slightly fewer edges is fine
            }
            edges.push((v, t));
            endpoints.push(t);
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagerank::{pagerank, PageRankConfig, WebGraph};

    #[test]
    fn generator_is_deterministic() {
        let cfg = WebGraphConfig::default();
        assert_eq!(preferential_attachment(&cfg), preferential_attachment(&cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let a = preferential_attachment(&WebGraphConfig {
            seed: 1,
            ..Default::default()
        });
        let b = preferential_attachment(&WebGraphConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn no_self_links_and_valid_node_ids() {
        let cfg = WebGraphConfig {
            num_nodes: 500,
            edges_per_node: 3,
            seed: 7,
        };
        for (s, t) in preferential_attachment(&cfg) {
            assert_ne!(s, t);
            assert!((s as usize) < cfg.num_nodes);
            assert!((t as usize) < cfg.num_nodes);
        }
    }

    #[test]
    fn pagerank_over_generated_graph_is_heavy_tailed() {
        let cfg = WebGraphConfig {
            num_nodes: 2000,
            edges_per_node: 4,
            seed: 11,
        };
        let edges = preferential_attachment(&cfg);
        let g = WebGraph::from_edges(cfg.num_nodes, &edges);
        let r = pagerank(&g, &PageRankConfig::default());
        let mut sorted = r.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top1pct: f64 = sorted[..20].iter().sum();
        // Early nodes accumulate rank: the top 1% should hold well above
        // a uniform share (1%) of the total mass.
        assert!(top1pct > 0.05, "top 1% holds {top1pct}");
    }
}
