//! PageRank by power iteration [4].
//!
//! Standard damped PageRank with uniform teleport and dangling-node mass
//! redistribution. Scores are normalized to sum to 1; the Figure 10
//! experiment additionally min–max normalizes them to `[0, 1]` as the
//! paper does.

/// A directed graph in compressed adjacency form (out-edges).
#[derive(Debug, Clone)]
pub struct WebGraph {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl WebGraph {
    /// Build from an edge list over nodes `0..num_nodes`. Duplicate edges
    /// are kept (they weight the link).
    pub fn from_edges(num_nodes: usize, edges: &[(u32, u32)]) -> Self {
        let mut offsets = vec![0u32; num_nodes + 1];
        for &(s, t) in edges {
            assert!((s as usize) < num_nodes && (t as usize) < num_nodes);
            offsets[s as usize + 1] += 1;
        }
        for i in 0..num_nodes {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; edges.len()];
        for &(s, t) in edges {
            let slot = &mut cursor[s as usize];
            targets[*slot as usize] = t;
            *slot += 1;
        }
        Self { offsets, targets }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-neighbors of node `n`.
    pub fn out(&self, n: u32) -> &[u32] {
        &self.targets[self.offsets[n as usize] as usize..self.offsets[n as usize + 1] as usize]
    }

    /// Out-degree of node `n`.
    pub fn out_degree(&self, n: u32) -> usize {
        self.out(n).len()
    }
}

/// PageRank hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageRankConfig {
    /// Damping factor (probability of following a link).
    pub damping: f64,
    /// Maximum power iterations.
    pub max_iterations: usize,
    /// L1 convergence threshold.
    pub eps: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 100,
            eps: 1e-10,
        }
    }
}

/// Compute PageRank scores (sum to 1).
pub fn pagerank(graph: &WebGraph, cfg: &PageRankConfig) -> Vec<f64> {
    let n = graph.num_nodes();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];
    for _ in 0..cfg.max_iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut dangling = 0.0;
        for (v, &r) in rank.iter().enumerate() {
            let outs = graph.out(v as u32);
            if outs.is_empty() {
                dangling += r;
            } else {
                let share = r / outs.len() as f64;
                for &t in outs {
                    next[t as usize] += share;
                }
            }
        }
        let teleport = (1.0 - cfg.damping) / nf + cfg.damping * dangling / nf;
        let mut delta = 0.0;
        for v in 0..n {
            let new = teleport + cfg.damping * next[v];
            delta += (new - rank[v]).abs();
            rank[v] = new;
        }
        if delta < cfg.eps {
            break;
        }
    }
    rank
}

/// Min–max normalize scores to `[0, 1]` (the paper normalizes PageRank
/// this way before plotting Figure 10).
pub fn normalize_unit(scores: &[f64]) -> Vec<f64> {
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &s in scores {
        lo = lo.min(s);
        hi = hi.max(s);
    }
    if !lo.is_finite() || hi <= lo {
        return vec![0.0; scores.len()];
    }
    scores.iter().map(|&s| (s - lo) / (hi - lo)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_sum_to_one() {
        let g = WebGraph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (3, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(r.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn hub_receives_more_rank() {
        // Everyone links to node 0.
        let edges: Vec<(u32, u32)> = (1..10u32).map(|i| (i, 0)).collect();
        let g = WebGraph::from_edges(10, &edges);
        let r = pagerank(&g, &PageRankConfig::default());
        for i in 1..10 {
            assert!(r[0] > r[i], "hub must outrank leaf {i}");
        }
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = WebGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let r = pagerank(&g, &PageRankConfig::default());
        for &x in &r {
            assert!((x - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let g = WebGraph::from_edges(3, &[(0, 1), (1, 2)]); // node 2 dangles
        let r = pagerank(&g, &PageRankConfig::default());
        assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph() {
        let g = WebGraph::from_edges(0, &[]);
        assert!(pagerank(&g, &PageRankConfig::default()).is_empty());
    }

    #[test]
    fn normalize_unit_spans_zero_to_one() {
        let n = normalize_unit(&[0.2, 0.5, 0.8]);
        assert_eq!(n[0], 0.0);
        assert_eq!(n[2], 1.0);
        assert!((n[1] - 0.5).abs() < 1e-12);
        assert_eq!(normalize_unit(&[0.3, 0.3]), vec![0.0, 0.0]);
    }

    #[test]
    fn known_two_node_solution() {
        // 0 → 1 only; analytic stationary: r1 = (1-d)/2 + d·r0, r0 = (1-d)/2 + d·r1·0…
        // With dangling redistribution r's satisfy closed form; just check
        // node 1 outranks node 0.
        let g = WebGraph::from_edges(2, &[(0, 1)]);
        let r = pagerank(&g, &PageRankConfig::default());
        assert!(r[1] > r[0]);
    }
}
