//! # kbt-extract
//!
//! A Knowledge-Vault-style extraction pipeline simulator.
//!
//! The paper's corpus comes from 16 information-extraction systems with
//! 40M extraction patterns run over 2B+ webpages [10]. That pipeline is
//! proprietary; this crate reproduces its *error structure*, which is all
//! the inference layer can see:
//!
//! * an extractor visits a source with probability δ,
//! * when visiting, it extracts each provided triple with probability `R`
//!   (recall),
//! * each extracted triple's subject, predicate, and object slots are
//!   independently correct with probability `P` — so triple-level
//!   precision is `P³`, exactly the synthetic model of Section 5.2.1,
//! * it may also hallucinate triples the source never provided
//!   (false positives, the `Q_e` of Eq. 6),
//! * it reports a confidence per extraction, which may be calibrated or
//!   garbage (Section 5.3.3 found some extractors "bad at predicting
//!   confidence").
//!
//! Extractions are attributed either to the extractor as a whole or to a
//! per-(extractor, pattern) provenance id — the finest extractor
//! granularity of Section 4.

#![warn(missing_docs)]

pub mod profile;
pub mod simulate;

pub use profile::{ConfidenceModel, ExtractorProfile};
pub use simulate::{simulate, ExtractorAxis, Provided, SimOutput, World};
