//! Extractor quality profiles.

/// How an extractor reports confidence scores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfidenceModel {
    /// Always reports confidence 1.0 (binary extractors).
    Binary,
    /// Confidence correlates with actual correctness: correct extractions
    /// score around `hi`, incorrect around `lo`, with uniform noise of
    /// half-width `noise`.
    Calibrated {
        /// Center score for correct extractions.
        hi: f64,
        /// Center score for incorrect extractions.
        lo: f64,
        /// Uniform noise half-width.
        noise: f64,
    },
    /// Confidence is uniform noise, carrying no signal (the "bad at
    /// predicting confidence" extractors of Section 5.3.3).
    Miscalibrated,
}

/// Quality profile of one extraction system.
#[derive(Debug, Clone, PartialEq)]
pub struct ExtractorProfile {
    /// Display name.
    pub name: String,
    /// δ: probability of processing a given source at all.
    pub visit_prob: f64,
    /// `R`: probability of extracting a provided triple when visiting.
    pub recall: f64,
    /// `P`: per-slot accuracy; triple precision ≈ `P³`.
    pub slot_accuracy: f64,
    /// Expected number of hallucinated (unprovided) triples per visited
    /// source.
    pub spurious_rate: f64,
    /// Confidence reporting behaviour.
    pub confidence: ConfidenceModel,
    /// Number of extraction patterns this system owns (provenance ids at
    /// the finest extractor granularity; pattern usage is skewed).
    pub num_patterns: u32,
    /// Probability that a corrupted or hallucinated object takes the
    /// pattern's *systematic* wrong value for the predicate instead of a
    /// uniform one. Real extraction errors are systematic — the same
    /// pattern extracts the same wrong value from many pages (the paper's
    /// motivating example: E4/E5 extracting "Kenya" everywhere). This is
    /// what makes the single-layer model count one bad extractor as many
    /// independent sources (Section 2.3).
    pub systematic_bias: f64,
}

impl ExtractorProfile {
    /// A uniform profile matching the synthetic setup of Section 5.2.1:
    /// δ = 0.5, R = 0.5, P = 0.8, binary confidence, no hallucinations
    /// beyond slot corruption.
    pub fn paper_synthetic(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            visit_prob: 0.5,
            recall: 0.5,
            slot_accuracy: 0.8,
            spurious_rate: 0.0,
            confidence: ConfidenceModel::Binary,
            num_patterns: 1,
            systematic_bias: 0.0,
        }
    }

    /// The 16-extractor suite used for the KV-scale corpus: a spread of
    /// archetypes from near-perfect curated extractors to noisy open-IE
    /// systems, mirroring the quality spread of Tables 2–3.
    pub fn kv_suite() -> Vec<ExtractorProfile> {
        let mut v = Vec::with_capacity(16);
        // Four high-precision, high-recall systems (the E1 archetype).
        for i in 0..4 {
            v.push(ExtractorProfile {
                name: format!("curated-{i}"),
                visit_prob: 0.9,
                recall: 0.85,
                slot_accuracy: 0.99,
                spurious_rate: 0.02,
                confidence: ConfidenceModel::Calibrated {
                    hi: 0.9,
                    lo: 0.3,
                    noise: 0.05,
                },
                num_patterns: 40,
                systematic_bias: 0.2,
            });
        }
        // Four precise but low-recall systems (E2).
        for i in 0..4 {
            v.push(ExtractorProfile {
                name: format!("precise-{i}"),
                visit_prob: 0.6,
                recall: 0.4,
                slot_accuracy: 0.98,
                spurious_rate: 0.01,
                confidence: ConfidenceModel::Calibrated {
                    hi: 0.95,
                    lo: 0.4,
                    noise: 0.05,
                },
                num_patterns: 25,
                systematic_bias: 0.2,
            });
        }
        // Four high-recall, trigger-happy systems (E3).
        for i in 0..4 {
            v.push(ExtractorProfile {
                name: format!("eager-{i}"),
                visit_prob: 0.8,
                recall: 0.9,
                slot_accuracy: 0.85,
                spurious_rate: 0.3,
                confidence: ConfidenceModel::Calibrated {
                    hi: 0.8,
                    lo: 0.5,
                    noise: 0.15,
                },
                num_patterns: 120,
                systematic_bias: 0.6,
            });
        }
        // Four low-quality open-IE systems (E4/E5).
        for i in 0..4 {
            v.push(ExtractorProfile {
                name: format!("openie-{i}"),
                visit_prob: 0.8,
                recall: 0.5,
                slot_accuracy: 0.6,
                spurious_rate: 1.0,
                confidence: ConfidenceModel::Miscalibrated,
                num_patterns: 300,
                systematic_bias: 0.7,
            });
        }
        v
    }

    /// Triple-level precision implied by the per-slot accuracy.
    pub fn triple_precision(&self) -> f64 {
        self.slot_accuracy.powi(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_matches_section_5_2_1() {
        let p = ExtractorProfile::paper_synthetic("E1");
        assert_eq!(p.visit_prob, 0.5);
        assert_eq!(p.recall, 0.5);
        assert_eq!(p.slot_accuracy, 0.8);
        assert!((p.triple_precision() - 0.512).abs() < 1e-12);
    }

    #[test]
    fn kv_suite_has_sixteen_extractors_with_spread_quality() {
        let suite = ExtractorProfile::kv_suite();
        assert_eq!(suite.len(), 16);
        let best = suite
            .iter()
            .map(|p| p.triple_precision())
            .fold(0.0f64, f64::max);
        let worst = suite
            .iter()
            .map(|p| p.triple_precision())
            .fold(1.0f64, f64::min);
        assert!(best > 0.95);
        assert!(worst < 0.5);
        let total_patterns: u32 = suite.iter().map(|p| p.num_patterns).sum();
        assert!(total_patterns > 1000, "pattern-rich suite for Figure 5");
    }
}
