//! The extraction simulation itself.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kbt_datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};

use crate::profile::{ConfidenceModel, ExtractorProfile};

/// The id spaces extractions live in: items form a (subject, predicate)
/// grid so slot corruption can move an extraction to a different item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct World {
    /// Number of subjects.
    pub num_subjects: u32,
    /// Number of predicates.
    pub num_predicates: u32,
    /// Size of the global value space.
    pub num_values: u32,
}

impl World {
    /// Dense item id of `(subject, predicate)`.
    pub fn item(&self, subject: u32, predicate: u32) -> ItemId {
        debug_assert!(subject < self.num_subjects && predicate < self.num_predicates);
        ItemId::new(subject * self.num_predicates + predicate)
    }

    /// Total number of items in the grid.
    pub fn num_items(&self) -> u32 {
        self.num_subjects * self.num_predicates
    }

    /// Inverse of [`World::item`].
    pub fn subject_predicate(&self, item: ItemId) -> (u32, u32) {
        (item.0 / self.num_predicates, item.0 % self.num_predicates)
    }
}

/// One triple actually provided by a source (ground truth `C* = 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Provided {
    /// The providing source.
    pub source: SourceId,
    /// Subject id.
    pub subject: u32,
    /// Predicate id.
    pub predicate: u32,
    /// Provided value.
    pub value: ValueId,
}

/// How extractions are attributed on the extractor axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractorAxis {
    /// One id per extraction system (the §5.2.1 synthetic setting).
    Profile,
    /// One id per (system, pattern) pair — the finest granularity of
    /// Section 4, with Zipf-skewed pattern usage (Figure 5).
    Pattern,
}

/// Output of a simulation run.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// All emitted extractions.
    pub observations: Vec<Observation>,
    /// For each observation: was it faithful (matches a provided triple of
    /// its source)?
    pub faithful: Vec<bool>,
    /// Number of extractor-axis ids used (profiles or patterns).
    pub num_extractor_ids: u32,
    /// For pattern attribution: which profile each extractor id belongs
    /// to (identity mapping under [`ExtractorAxis::Profile`]).
    pub profile_of_extractor: Vec<u32>,
}

/// Zipf-ish rank sampler: picks rank `k` with probability ∝ 1/(k+1).
fn zipf_rank(rng: &mut StdRng, n: u32) -> u32 {
    if n <= 1 {
        return 0;
    }
    // Inverse-CDF on the harmonic weights, cheap approximation via
    // rejection on u^e shaping.
    let h: f64 = (1..=n).map(|k| 1.0 / k as f64).sum();
    let mut target = rng.gen::<f64>() * h;
    for k in 1..=n {
        target -= 1.0 / k as f64;
        if target <= 0.0 {
            return k - 1;
        }
    }
    n - 1
}

/// Run the extraction pipeline over `provided` triples.
///
/// `provided` must be grouped by source (all triples of one source
/// contiguous) for efficiency; the simulator visits each (extractor,
/// source) pair once. Fully deterministic given `seed`.
pub fn simulate(
    world: &World,
    provided: &[Provided],
    profiles: &[ExtractorProfile],
    axis: ExtractorAxis,
    seed: u64,
) -> SimOutput {
    let mut rng = StdRng::seed_from_u64(seed);

    // Pattern-id layout: patterns of profile p occupy a contiguous range.
    let mut pattern_base = Vec::with_capacity(profiles.len());
    let mut next = 0u32;
    for p in profiles {
        pattern_base.push(next);
        next += match axis {
            ExtractorAxis::Profile => 1,
            ExtractorAxis::Pattern => p.num_patterns.max(1),
        };
    }
    let num_extractor_ids = next;
    let mut profile_of_extractor = vec![0u32; num_extractor_ids as usize];
    for (pi, p) in profiles.iter().enumerate() {
        let n = match axis {
            ExtractorAxis::Profile => 1,
            ExtractorAxis::Pattern => p.num_patterns.max(1),
        };
        for k in 0..n {
            profile_of_extractor[(pattern_base[pi] + k) as usize] = pi as u32;
        }
    }

    // Group provided triples by source (they are contiguous by contract;
    // fall back to a scan that tolerates any order).
    let mut by_source: Vec<(SourceId, std::ops::Range<usize>)> = Vec::new();
    let mut i = 0;
    while i < provided.len() {
        let w = provided[i].source;
        let start = i;
        while i < provided.len() && provided[i].source == w {
            i += 1;
        }
        by_source.push((w, start..i));
    }

    let mut observations = Vec::new();
    let mut faithful = Vec::new();

    for (pi, prof) in profiles.iter().enumerate() {
        let patterns = match axis {
            ExtractorAxis::Profile => 1,
            ExtractorAxis::Pattern => prof.num_patterns.max(1),
        };
        for (w, range) in &by_source {
            if rng.gen::<f64>() >= prof.visit_prob {
                continue;
            }
            // True-positive channel (with slot corruption).
            for t in &provided[range.clone()] {
                if rng.gen::<f64>() >= prof.recall {
                    continue;
                }
                let mut subject = t.subject;
                let mut predicate = t.predicate;
                let mut value = t.value;
                if rng.gen::<f64>() >= prof.slot_accuracy {
                    subject = resample(&mut rng, subject, world.num_subjects);
                }
                if rng.gen::<f64>() >= prof.slot_accuracy {
                    predicate = resample(&mut rng, predicate, world.num_predicates);
                }
                if rng.gen::<f64>() >= prof.slot_accuracy {
                    value = corrupt_value(
                        &mut rng,
                        prof,
                        pi,
                        world.item(subject, predicate).0,
                        value,
                        world,
                    );
                }
                let is_faithful =
                    subject == t.subject && predicate == t.predicate && value == t.value;
                let ext = ExtractorId::new(pattern_base[pi] + zipf_rank(&mut rng, patterns));
                observations.push(Observation {
                    extractor: ext,
                    source: *w,
                    item: world.item(subject, predicate),
                    value,
                    confidence: confidence(&mut rng, &prof.confidence, is_faithful),
                });
                faithful.push(is_faithful);
            }
            // Hallucination channel: Poisson-ish via repeated Bernoulli.
            let mut expect = prof.spurious_rate;
            while expect > 0.0 {
                let p = expect.min(1.0);
                expect -= 1.0;
                if rng.gen::<f64>() >= p {
                    continue;
                }
                let subject = rng.gen_range(0..world.num_subjects);
                let predicate = rng.gen_range(0..world.num_predicates);
                let uniform = ValueId::new(rng.gen_range(0..world.num_values));
                let value = corrupt_value(
                    &mut rng,
                    prof,
                    pi,
                    world.item(subject, predicate).0,
                    uniform,
                    world,
                );
                let ext = ExtractorId::new(pattern_base[pi] + zipf_rank(&mut rng, patterns));
                observations.push(Observation {
                    extractor: ext,
                    source: *w,
                    item: world.item(subject, predicate),
                    value,
                    confidence: confidence(&mut rng, &prof.confidence, false),
                });
                faithful.push(false);
            }
        }
    }

    SimOutput {
        observations,
        faithful,
        num_extractor_ids,
        profile_of_extractor,
    }
}

/// Draw a wrong object value: with probability `systematic_bias` the
/// profile's stable favorite wrong value *for this data item* (a
/// systematic extraction error repeats the same wrong triple on every
/// page it fires on — the paper's E4/E5 extracting "Kenya" for Obama's
/// nationality from page after page), otherwise uniform.
fn corrupt_value(
    rng: &mut StdRng,
    prof: &ExtractorProfile,
    profile_idx: usize,
    item_key: u32,
    current: ValueId,
    world: &World,
) -> ValueId {
    if rng.gen::<f64>() < prof.systematic_bias {
        let favorite = (profile_idx as u32)
            .wrapping_mul(2654435761)
            .wrapping_add(item_key.wrapping_mul(40503))
            % world.num_values;
        if favorite != current.0 {
            return ValueId::new(favorite);
        }
    }
    ValueId::new(resample(rng, current.0, world.num_values))
}

fn resample(rng: &mut StdRng, current: u32, bound: u32) -> u32 {
    if bound <= 1 {
        return current;
    }
    let mut x = rng.gen_range(0..bound - 1);
    if x >= current {
        x += 1;
    }
    x
}

fn confidence(rng: &mut StdRng, model: &ConfidenceModel, correct: bool) -> f64 {
    match model {
        ConfidenceModel::Binary => 1.0,
        ConfidenceModel::Calibrated { hi, lo, noise } => {
            let center = if correct { *hi } else { *lo };
            (center + rng.gen_range(-noise..=*noise)).clamp(0.0, 1.0)
        }
        ConfidenceModel::Miscalibrated => rng.gen::<f64>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_world() -> World {
        World {
            num_subjects: 20,
            num_predicates: 5,
            num_values: 11,
        }
    }

    fn provided_grid(world: &World, sources: u32) -> Vec<Provided> {
        let mut v = Vec::new();
        for w in 0..sources {
            for s in 0..world.num_subjects {
                for p in 0..world.num_predicates {
                    v.push(Provided {
                        source: SourceId::new(w),
                        subject: s,
                        predicate: p,
                        value: ValueId::new((s + p) % world.num_values),
                    });
                }
            }
        }
        v
    }

    #[test]
    fn world_item_round_trips() {
        let w = small_world();
        for s in 0..w.num_subjects {
            for p in 0..w.num_predicates {
                assert_eq!(w.subject_predicate(w.item(s, p)), (s, p));
            }
        }
        assert_eq!(w.num_items(), 100);
    }

    #[test]
    fn simulation_is_deterministic() {
        let w = small_world();
        let prov = provided_grid(&w, 5);
        let profiles = vec![ExtractorProfile::paper_synthetic("E1")];
        let a = simulate(&w, &prov, &profiles, ExtractorAxis::Profile, 7);
        let b = simulate(&w, &prov, &profiles, ExtractorAxis::Profile, 7);
        assert_eq!(a.observations, b.observations);
        assert_eq!(a.faithful, b.faithful);
    }

    #[test]
    fn recall_controls_extraction_volume() {
        let w = small_world();
        let prov = provided_grid(&w, 10);
        let mut low = ExtractorProfile::paper_synthetic("low");
        low.recall = 0.1;
        low.visit_prob = 1.0;
        let mut high = low.clone();
        high.recall = 0.9;
        let out_low = simulate(&w, &prov, &[low], ExtractorAxis::Profile, 3);
        let out_high = simulate(&w, &prov, &[high], ExtractorAxis::Profile, 3);
        assert!(out_high.observations.len() > 5 * out_low.observations.len());
    }

    #[test]
    fn empirical_precision_tracks_slot_accuracy() {
        let w = small_world();
        let prov = provided_grid(&w, 50);
        let mut p = ExtractorProfile::paper_synthetic("E");
        p.visit_prob = 1.0;
        p.recall = 1.0;
        let out = simulate(&w, &prov, &[p.clone()], ExtractorAxis::Profile, 9);
        let correct = out.faithful.iter().filter(|&&f| f).count();
        let precision = correct as f64 / out.faithful.len() as f64;
        assert!(
            (precision - p.triple_precision()).abs() < 0.03,
            "empirical {precision} vs P³ = {}",
            p.triple_precision()
        );
    }

    #[test]
    fn perfect_extractor_is_fully_faithful() {
        let w = small_world();
        let prov = provided_grid(&w, 3);
        let p = ExtractorProfile {
            name: "perfect".into(),
            visit_prob: 1.0,
            recall: 1.0,
            slot_accuracy: 1.0,
            spurious_rate: 0.0,
            confidence: ConfidenceModel::Binary,
            num_patterns: 1,
            systematic_bias: 0.0,
        };
        let out = simulate(&w, &prov, &[p], ExtractorAxis::Profile, 1);
        assert_eq!(out.observations.len(), prov.len());
        assert!(out.faithful.iter().all(|&f| f));
        assert!(out.observations.iter().all(|o| o.confidence == 1.0));
    }

    #[test]
    fn spurious_extractions_are_unfaithful() {
        let w = small_world();
        let prov = provided_grid(&w, 5);
        let p = ExtractorProfile {
            name: "hallucinator".into(),
            visit_prob: 1.0,
            recall: 0.0, // only the spurious channel fires
            slot_accuracy: 1.0,
            spurious_rate: 3.0,
            confidence: ConfidenceModel::Binary,
            num_patterns: 1,
            systematic_bias: 0.0,
        };
        let out = simulate(&w, &prov, &[p], ExtractorAxis::Profile, 5);
        assert!(!out.observations.is_empty());
        assert!(out.faithful.iter().all(|&f| !f));
    }

    #[test]
    fn pattern_axis_spreads_ids_with_zipf_skew() {
        let w = small_world();
        let prov = provided_grid(&w, 30);
        let mut p = ExtractorProfile::paper_synthetic("pat");
        p.visit_prob = 1.0;
        p.recall = 1.0;
        p.num_patterns = 10;
        let out = simulate(&w, &prov, &[p], ExtractorAxis::Pattern, 11);
        assert_eq!(out.num_extractor_ids, 10);
        let mut counts = [0usize; 10];
        for o in &out.observations {
            counts[o.extractor.index()] += 1;
        }
        assert!(counts[0] > counts[9], "pattern usage must be skewed");
        assert_eq!(out.profile_of_extractor, vec![0; 10]);
    }

    #[test]
    fn calibrated_confidence_separates_correct_from_wrong() {
        let w = small_world();
        let prov = provided_grid(&w, 50);
        let p = ExtractorProfile {
            name: "cal".into(),
            visit_prob: 1.0,
            recall: 1.0,
            slot_accuracy: 0.7,
            spurious_rate: 0.0,
            confidence: ConfidenceModel::Calibrated {
                hi: 0.9,
                lo: 0.2,
                noise: 0.05,
            },
            num_patterns: 1,
            systematic_bias: 0.0,
        };
        let out = simulate(&w, &prov, &[p], ExtractorAxis::Profile, 13);
        let (mut sum_ok, mut n_ok, mut sum_bad, mut n_bad) = (0.0, 0, 0.0, 0);
        for (o, &f) in out.observations.iter().zip(&out.faithful) {
            if f {
                sum_ok += o.confidence;
                n_ok += 1;
            } else {
                sum_bad += o.confidence;
                n_bad += 1;
            }
        }
        assert!(sum_ok / (n_ok as f64) > 0.8);
        assert!(sum_bad / (n_bad as f64) < 0.3);
    }
}
