//! # kbt-flume
//!
//! A small FlumeJava-like parallel dataflow engine.
//!
//! The paper runs all inference in FlumeJava [6] on Map-Reduce (Section
//! 3.2, Section 5.3.4). This crate reproduces the programming model
//! in-process: sharded parallel map ([`par_map_slice`]), parallel
//! do/filter/group-by-key/combine over [`PCollection`]s, and a phase
//! stopwatch used by the Table 7 timing experiment.
//!
//! Everything is deterministic: shards are contiguous, results are
//! concatenated in input order, and grouped keys are emitted in sorted
//! order, so a parallel run produces bit-identical results to a serial
//! run (the integration tests assert this).

#![warn(missing_docs)]

pub mod pcollection;
pub mod stopwatch;

pub use pcollection::{PCollection, PTable};
pub use stopwatch::PhaseTimer;

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Global override for the worker-thread count (0 = use hardware default).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Number of worker threads used by all `par_*` operations.
///
/// Defaults to the hardware parallelism; can be overridden (e.g. to 1 to
/// measure serial baselines in the Table 7 experiment) with
/// [`set_num_threads`].
pub fn num_threads() -> usize {
    let o = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if o > 0 {
        return o;
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Override the worker-thread count for subsequent operations.
/// `0` restores the hardware default.
pub fn set_num_threads(n: usize) {
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Parallel map over a slice, preserving input order.
///
/// The slice is split into one contiguous shard per worker; each worker maps
/// its shard and the shard outputs are concatenated in order, so the result
/// equals `items.iter().map(f).collect()` exactly.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(|_| shard.iter().map(&f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    })
    .expect("kbt-flume scope failed");
    let mut out = Vec::with_capacity(items.len());
    for s in shards {
        out.extend(s);
    }
    out
}

/// Parallel indexed map: like [`par_map_slice`] but `f` also receives the
/// global index of each element.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, shard)| {
                let base = ci * chunk;
                let f = &f;
                scope.spawn(move |_| {
                    shard
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    })
    .expect("kbt-flume scope failed");
    let mut out = Vec::with_capacity(items.len());
    for s in shards {
        out.extend(s);
    }
    out
}

/// Parallel in-place update over mutable contiguous chunks.
///
/// `f` receives the starting global index of the chunk and the chunk itself.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        f(0, items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    crossbeam::scope(|scope| {
        for (ci, shard) in items.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move |_| f(ci * chunk, shard));
        }
    })
    .expect("kbt-flume scope failed");
}

/// Parallel fold-then-reduce: each worker folds its shard from
/// `identity()`, then the per-shard accumulators are combined in shard
/// order with `combine` (so non-commutative combines are still
/// deterministic).
pub fn par_fold<T, A, Id, F, C>(items: &[T], identity: Id, fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    Id: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() < 2 {
        return items.iter().fold(identity(), fold);
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<A> = Vec::with_capacity(threads);
    crossbeam::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                let identity = &identity;
                let fold = &fold;
                scope.spawn(move |_| shard.iter().fold(identity(), fold))
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    })
    .expect("kbt-flume scope failed");
    let mut it = shards.into_iter();
    let first = it.next().unwrap_or_else(&identity);
    it.fold(first, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let xs: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(par_map_slice(&xs, |x| x * x), serial);
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let xs = vec![10u64; 5_000];
        let out = par_map_indexed(&xs, |i, x| i as u64 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 10);
        }
    }

    #[test]
    fn par_chunks_mut_updates_every_element() {
        let mut xs: Vec<usize> = vec![0; 7_777];
        par_chunks_mut(&mut xs, |base, shard| {
            for (i, v) in shard.iter_mut().enumerate() {
                *v = base + i;
            }
        });
        for (i, v) in xs.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn par_fold_sums_deterministically() {
        let xs: Vec<u64> = (1..=100_000).collect();
        let sum = par_fold(&xs, || 0u64, |a, x| a + x, |a, b| a + b);
        assert_eq!(sum, 100_000 * 100_001 / 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_slice(&empty, |x| x + 1).is_empty());
        assert_eq!(par_map_slice(&[41u32], |x| x + 1), vec![42]);
        assert_eq!(par_fold(&empty, || 7u32, |a, x| a + x, |a, b| a + b), 7);
    }

    #[test]
    fn thread_override_is_respected_and_restorable() {
        set_num_threads(1);
        assert_eq!(num_threads(), 1);
        let xs: Vec<u32> = (0..100).collect();
        assert_eq!(par_map_slice(&xs, |x| x + 1).len(), 100);
        set_num_threads(0);
        assert!(num_threads() >= 1);
    }
}
