//! # kbt-flume
//!
//! A small FlumeJava-like parallel dataflow engine.
//!
//! The paper runs all inference in FlumeJava [6] on Map-Reduce (Section
//! 3.2, Section 5.3.4). This crate reproduces the programming model
//! in-process: sharded parallel map ([`par_map_slice`]), parallel
//! do/filter/group-by-key/combine over [`PCollection`]s, and a phase
//! stopwatch used by the Table 7 timing experiment.
//!
//! Everything is deterministic: shards are contiguous, results are
//! concatenated in input order, and grouped keys are emitted in sorted
//! order, so a parallel run produces bit-identical results to a serial
//! run (the integration tests assert this).
//!
//! ## Thread configuration
//!
//! Worker-thread count resolves in three layers:
//!
//! 1. a **scoped override** installed by [`with_threads`] — what
//!    `TrustPipeline::threads` and `ModelConfig::threads` use, safe under
//!    concurrent runs because it is thread-local to the orchestrating
//!    thread;
//! 2. the **process-global fallback default** set by [`set_num_threads`]
//!    (kept for coarse tuning, e.g. a CLI flag);
//! 3. the hardware parallelism.

#![warn(missing_docs)]

pub mod pcollection;
pub mod sharded;
pub mod stopwatch;

pub use pcollection::{PCollection, PTable};
pub use sharded::{balanced_ranges, ShardedExecutor};
pub use stopwatch::{PhaseTimer, Stopwatch};

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global fallback for the worker-thread count (0 = hardware
/// default). Scoped overrides installed by [`with_threads`] win over this.
static THREAD_DEFAULT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Scoped per-run override (0 = none). Thread-local, so concurrent
    /// pipeline runs on different threads cannot race each other.
    static THREAD_SCOPED: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads used by all `par_*` operations, resolved as
/// scoped override → global fallback → hardware parallelism.
pub fn num_threads() -> usize {
    let scoped = THREAD_SCOPED.with(Cell::get);
    if scoped == usize::MAX {
        // with_threads(Some(0), ..): hardware default, shadowing any
        // outer override or global fallback.
        return hardware_threads();
    }
    if scoped > 0 {
        return scoped;
    }
    // ordering: Relaxed — a lone word-sized config cell; readers need no ordering with any other memory.
    let fallback = THREAD_DEFAULT.load(Ordering::Relaxed);
    if fallback > 0 {
        return fallback;
    }
    hardware_threads()
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Set the **process-global fallback** worker-thread count. `0` restores
/// the hardware default.
///
/// This is a coarse knob shared by every thread in the process; prefer the
/// race-free per-run override ([`with_threads`], or `threads` on
/// `ModelConfig`/`TrustPipeline`) anywhere two runs could overlap — e.g.
/// parallel `cargo test` threads.
pub fn set_num_threads(n: usize) {
    // ordering: Relaxed — publishes only the counter value itself, never other memory.
    THREAD_DEFAULT.store(n, Ordering::Relaxed);
}

/// Run `f` with the worker-thread count scoped to `n` on this thread.
///
/// `None` leaves the ambient configuration untouched; `Some(0)` forces the
/// hardware default. The previous override is restored on exit (also on
/// panic), so nested scopes behave like a stack.
pub fn with_threads<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
    match n {
        None => f(),
        Some(n) => {
            struct Restore(usize);
            impl Drop for Restore {
                fn drop(&mut self) {
                    THREAD_SCOPED.with(|c| c.set(self.0));
                }
            }
            let prev = THREAD_SCOPED.with(|c| {
                let prev = c.get();
                // usize::MAX marks "hardware default" explicitly, letting
                // Some(0) shadow an outer override.
                c.set(if n == 0 { usize::MAX } else { n });
                prev
            });
            let _restore = Restore(prev);
            f()
        }
    }
}

/// Parallel map over a slice, preserving input order.
///
/// The slice is split into one contiguous shard per worker; each worker maps
/// its shard and the shard outputs are concatenated in order, so the result
/// equals `items.iter().map(f).collect()` exactly.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| scope.spawn(move || shard.iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for s in shards {
        out.extend(s);
    }
    out
}

/// Parallel indexed map: like [`par_map_slice`] but `f` also receives the
/// global index of each element.
pub fn par_map_indexed<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, shard)| {
                let base = ci * chunk;
                scope.spawn(move || {
                    shard
                        .iter()
                        .enumerate()
                        .map(|(i, t)| f(base + i, t))
                        .collect::<Vec<U>>()
                })
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for s in shards {
        out.extend(s);
    }
    out
}

/// Parallel in-place update over mutable contiguous chunks.
///
/// `f` receives the starting global index of the chunk and the chunk itself.
pub fn par_chunks_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = effective_threads(items.len());
    if threads <= 1 || items.len() < 2 {
        f(0, items);
        return;
    }
    let chunk = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        for (ci, shard) in items.chunks_mut(chunk).enumerate() {
            scope.spawn(move || f(ci * chunk, shard));
        }
    });
}

/// Parallel fold-then-reduce: each worker folds its shard from
/// `identity()`, then the per-shard accumulators are combined in shard
/// order with `combine` (so non-commutative combines are still
/// deterministic).
pub fn par_fold<T, A, Id, F, C>(items: &[T], identity: Id, fold: F, combine: C) -> A
where
    T: Sync,
    A: Send,
    Id: Fn() -> A + Sync,
    F: Fn(A, &T) -> A + Sync,
    C: Fn(A, A) -> A,
{
    let threads = effective_threads(items.len());
    if threads <= 1 || items.len() < 2 {
        return items.iter().fold(identity(), fold);
    }
    let chunk = items.len().div_ceil(threads);
    let mut shards: Vec<A> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|shard| {
                let identity = &identity;
                let fold = &fold;
                scope.spawn(move || shard.iter().fold(identity(), fold))
            })
            .collect();
        for h in handles {
            shards.push(h.join().expect("kbt-flume worker panicked"));
        }
    });
    let mut it = shards.into_iter();
    let first = it.next().unwrap_or_else(&identity);
    it.fold(first, combine)
}

/// Worker count for `len` items: never more workers than items.
fn effective_threads(len: usize) -> usize {
    num_threads().min(len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_serial_map() {
        let xs: Vec<u64> = (0..10_000).collect();
        let serial: Vec<u64> = xs.iter().map(|x| x * x).collect();
        assert_eq!(par_map_slice(&xs, |x| x * x), serial);
    }

    #[test]
    fn par_map_indexed_sees_global_indices() {
        let xs = vec![10u64; 5_000];
        let out = par_map_indexed(&xs, |i, x| i as u64 + x);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u64 + 10);
        }
    }

    #[test]
    fn par_chunks_mut_updates_every_element() {
        let mut xs: Vec<usize> = vec![0; 7_777];
        par_chunks_mut(&mut xs, |base, shard| {
            for (i, v) in shard.iter_mut().enumerate() {
                *v = base + i;
            }
        });
        for (i, v) in xs.iter().enumerate() {
            assert_eq!(*v, i);
        }
    }

    #[test]
    fn par_fold_sums_deterministically() {
        let xs: Vec<u64> = (1..=100_000).collect();
        let sum = par_fold(&xs, || 0u64, |a, x| a + x, |a, b| a + b);
        assert_eq!(sum, 100_000 * 100_001 / 2);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(par_map_slice(&empty, |x| x + 1).is_empty());
        assert_eq!(par_map_slice(&[41u32], |x| x + 1), vec![42]);
        assert_eq!(par_fold(&empty, || 7u32, |a, x| a + x, |a, b| a + b), 7);
    }

    #[test]
    fn scoped_override_wins_and_restores() {
        with_threads(Some(1), || {
            assert_eq!(num_threads(), 1);
            // Nested scope shadows, then restores.
            with_threads(Some(3), || assert_eq!(num_threads(), 3));
            assert_eq!(num_threads(), 1);
            // Some(0) explicitly requests the hardware default, shadowing
            // the outer Some(1) — and the sentinel never leaks out.
            with_threads(Some(0), || {
                let n = num_threads();
                assert!(n >= 1 && n != usize::MAX, "sentinel leaked: {n}");
            });
        });
        assert!(num_threads() >= 1);
        // None leaves ambient config untouched.
        with_threads(None, || assert!(num_threads() >= 1));
    }

    #[test]
    fn scoped_override_is_thread_local() {
        with_threads(Some(1), || {
            let other = std::thread::spawn(num_threads).join().unwrap();
            assert!(other >= 1, "other thread must not see this scope");
            assert_eq!(num_threads(), 1);
        });
    }

    #[test]
    fn parallel_results_match_under_scoped_override() {
        let xs: Vec<u32> = (0..1_000).collect();
        let serial = with_threads(Some(1), || par_map_slice(&xs, |x| x * 3));
        let wide = with_threads(Some(8), || par_map_slice(&xs, |x| x * 3));
        assert_eq!(serial, wide);
    }
}
