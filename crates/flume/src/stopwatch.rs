//! Phase timing for the Table 7 running-time experiment.
//!
//! The paper reports *relative* running time per pipeline phase
//! (preparation; then per-iteration: extraction correctness, triple
//! probability, source accuracy, extractor quality). [`PhaseTimer`]
//! accumulates wall-clock time per named phase across repeated runs and can
//! normalize against a reference total, reproducing the structure of
//! Table 7.

use std::time::{Duration, Instant};

/// A lap stopwatch for per-round wall-clock timing.
///
/// [`Stopwatch::lap`] returns the time since the previous lap (or since
/// construction for the first lap) — the unit the models use to time each
/// EM round for the convergence trace of `FusionReport`.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    last: Instant,
}

impl Stopwatch {
    /// Start a stopwatch now.
    pub fn start() -> Self {
        Self {
            last: Instant::now(),
        }
    }

    /// Time since the previous lap (or since start), and reset the lap.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.last;
        self.last = now;
        d
    }

    /// Time since the previous lap without resetting it.
    pub fn peek(&self) -> Duration {
        self.last.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulates wall-clock durations by phase name.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    phases: Vec<(String, Duration, u64)>,
}

impl PhaseTimer {
    /// Create an empty timer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Time `f`, charging its duration to `phase`.
    pub fn time<R>(&mut self, phase: &str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(phase, t0.elapsed());
        r
    }

    /// Charge an externally measured duration to `phase`.
    pub fn add(&mut self, phase: &str, d: Duration) {
        if let Some(entry) = self.phases.iter_mut().find(|(n, _, _)| n == phase) {
            entry.1 += d;
            entry.2 += 1;
        } else {
            self.phases.push((phase.to_string(), d, 1));
        }
    }

    /// Total accumulated duration of `phase`, if recorded.
    pub fn total(&self, phase: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _, _)| n == phase)
            .map(|(_, d, _)| *d)
    }

    /// Mean duration per recorded occurrence of `phase`.
    pub fn mean(&self, phase: &str) -> Option<Duration> {
        self.phases
            .iter()
            .find(|(n, _, _)| n == phase)
            .map(|(_, d, c)| *d / (*c as u32).max(1))
    }

    /// Sum of all phase totals.
    pub fn grand_total(&self) -> Duration {
        self.phases.iter().map(|(_, d, _)| *d).sum()
    }

    /// `(phase, total, count)` rows in first-recorded order.
    pub fn rows(&self) -> &[(String, Duration, u64)] {
        &self.phases
    }

    /// Phase totals normalized so that `reference` equals 1.0 — the unit
    /// used by Table 7 ("one iteration of MULTILAYER takes 1 unit").
    pub fn relative_to(&self, reference: Duration) -> Vec<(String, f64)> {
        let r = reference.as_secs_f64().max(f64::MIN_POSITIVE);
        self.phases
            .iter()
            .map(|(n, d, _)| (n.clone(), d.as_secs_f64() / r))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_by_phase() {
        let mut t = PhaseTimer::new();
        t.add("prep", Duration::from_millis(10));
        t.add("prep", Duration::from_millis(20));
        t.add("iter", Duration::from_millis(5));
        assert_eq!(t.total("prep"), Some(Duration::from_millis(30)));
        assert_eq!(t.mean("prep"), Some(Duration::from_millis(15)));
        assert_eq!(t.grand_total(), Duration::from_millis(35));
        assert_eq!(t.total("missing"), None);
    }

    #[test]
    fn time_charges_the_closure() {
        let mut t = PhaseTimer::new();
        let v = t.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.total("work").is_some());
    }

    #[test]
    fn relative_normalization() {
        let mut t = PhaseTimer::new();
        t.add("a", Duration::from_millis(100));
        t.add("b", Duration::from_millis(50));
        let rel = t.relative_to(Duration::from_millis(100));
        assert_eq!(rel[0], ("a".to_string(), 1.0));
        assert!((rel[1].1 - 0.5).abs() < 1e-9);
    }
}
