//! FlumeJava-style `PCollection` / `PTable` pipeline stages.
//!
//! These mirror the handful of FlumeJava primitives the paper's pipeline
//! needs: `parallelDo`, `groupByKey`, and `combineValues`. Keys are grouped
//! by hash-sharding across workers and emitted in sorted key order, so
//! pipelines are deterministic regardless of thread count.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use crate::{num_threads, par_map_slice};

/// An immutable parallel collection (FlumeJava's `PCollection<T>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PCollection<T> {
    items: Vec<T>,
}

impl<T> PCollection<T> {
    /// Wrap a vector as a collection.
    pub fn from_vec(items: Vec<T>) -> Self {
        Self { items }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Unwrap into the underlying vector.
    pub fn into_vec(self) -> Vec<T> {
        self.items
    }

    /// Borrow the underlying slice.
    pub fn as_slice(&self) -> &[T] {
        &self.items
    }
}

impl<T: Send + Sync> PCollection<T> {
    /// FlumeJava `parallelDo`: apply `f` to every element in parallel.
    pub fn par_do<U, F>(self, f: F) -> PCollection<U>
    where
        U: Send,
        F: Fn(&T) -> U + Sync,
    {
        PCollection::from_vec(par_map_slice(&self.items, f))
    }

    /// `parallelDo` with 0..n outputs per element.
    pub fn par_flat_do<U, F>(self, f: F) -> PCollection<U>
    where
        U: Send,
        F: Fn(&T) -> Vec<U> + Sync,
    {
        let nested = par_map_slice(&self.items, f);
        let mut out = Vec::with_capacity(nested.iter().map(Vec::len).sum());
        for v in nested {
            out.extend(v);
        }
        PCollection::from_vec(out)
    }

    /// Keep only elements matching `pred` (parallel).
    pub fn par_filter<F>(self, pred: F) -> PCollection<T>
    where
        T: Clone,
        F: Fn(&T) -> bool + Sync,
    {
        let keep = par_map_slice(&self.items, &pred);
        let items = self
            .items
            .into_iter()
            .zip(keep)
            .filter_map(|(t, k)| k.then_some(t))
            .collect();
        PCollection::from_vec(items)
    }
}

impl<K, V> PCollection<(K, V)>
where
    K: Ord + Hash + Send + Sync + Clone,
    V: Send + Sync + Clone,
{
    /// FlumeJava `groupByKey`: shard by key hash, group within shards, and
    /// emit groups in sorted key order.
    pub fn group_by_key(self) -> PTable<K, V> {
        let shards = num_threads().max(1);
        // Partition pairs into hash shards (serial scatter, cheap), then
        // group each shard in parallel.
        let mut parts: Vec<Vec<(K, V)>> = (0..shards).map(|_| Vec::new()).collect();
        for (k, v) in self.items {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            k.hash(&mut h);
            let shard = (h.finish() as usize) % shards;
            parts[shard].push((k, v));
        }
        let grouped: Vec<Vec<(K, Vec<V>)>> = par_map_slice(&parts, |part| {
            let mut m: HashMap<K, Vec<V>> = HashMap::new();
            for (k, v) in part {
                m.entry(k.clone()).or_default().push(v.clone());
            }
            let mut g: Vec<(K, Vec<V>)> = m.into_iter().collect();
            g.sort_by(|a, b| a.0.cmp(&b.0));
            g
        });
        let mut groups: Vec<(K, Vec<V>)> = grouped.into_iter().flatten().collect();
        groups.sort_by(|a, b| a.0.cmp(&b.0));
        PTable { groups }
    }
}

/// A grouped table (FlumeJava's `PTable<K, Collection<V>>`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PTable<K, V> {
    groups: Vec<(K, Vec<V>)>,
}

impl<K, V> PTable<K, V> {
    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when no key is present.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Unwrap into `(key, values)` pairs in sorted key order.
    pub fn into_groups(self) -> Vec<(K, Vec<V>)> {
        self.groups
    }
}

impl<K, V> PTable<K, V>
where
    K: Send + Sync + Clone,
    V: Send + Sync,
{
    /// FlumeJava `combineValues`: reduce each key's values in parallel.
    pub fn combine_values<U, F>(self, f: F) -> PCollection<(K, U)>
    where
        U: Send,
        F: Fn(&K, &[V]) -> U + Sync,
    {
        let out = par_map_slice(&self.groups, |(k, vs)| (k.clone(), f(k, vs)));
        PCollection::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_do_preserves_order() {
        let c = PCollection::from_vec((0..1000).collect::<Vec<i64>>());
        let out = c.par_do(|x| x * 2).into_vec();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<i64>>());
    }

    #[test]
    fn flat_do_concatenates_in_order() {
        let c = PCollection::from_vec(vec![1usize, 2, 3]);
        let out = c.par_flat_do(|&n| vec![n; n]).into_vec();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn filter_keeps_matching_elements() {
        let c = PCollection::from_vec((0..100).collect::<Vec<u32>>());
        let out = c.par_filter(|x| x % 10 == 0).into_vec();
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70, 80, 90]);
    }

    #[test]
    fn group_by_key_groups_and_sorts() {
        let pairs: Vec<(u32, u32)> = (0..1000).map(|i| (i % 7, i)).collect();
        let t = PCollection::from_vec(pairs).group_by_key();
        let groups = t.into_groups();
        assert_eq!(groups.len(), 7);
        let keys: Vec<u32> = groups.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![0, 1, 2, 3, 4, 5, 6]);
        let total: usize = groups.iter().map(|(_, vs)| vs.len()).sum();
        assert_eq!(total, 1000);
        for (k, vs) in &groups {
            for v in vs {
                assert_eq!(v % 7, *k);
            }
        }
    }

    #[test]
    fn word_count_pipeline() {
        let words = PCollection::from_vec(vec![
            ("a", 1u32),
            ("b", 1),
            ("a", 1),
            ("c", 1),
            ("a", 1),
            ("b", 1),
        ]);
        let counts = words
            .group_by_key()
            .combine_values(|_, vs| vs.iter().sum::<u32>())
            .into_vec();
        assert_eq!(counts, vec![("a", 3), ("b", 2), ("c", 1)]);
    }
}
