//! Shard-parallel execution with per-worker reusable scratch arenas.
//!
//! The paper's pipeline runs as sharded Map-Reduce rounds (Section 5.3.4):
//! work is partitioned by key range, every worker owns its shard's state
//! for the whole round, and shard outputs are combined in a fixed order.
//! [`ShardedExecutor`] reproduces that execution model in-process and adds
//! the piece an iterative EM loop needs that one-shot Map-Reduce does not:
//! **scratch arenas that survive across rounds**. Each shard owns an
//! arbitrary scratch value `S` (buffers, accumulators, whatever the hot
//! loop needs); the executor lends it to the shard's worker on every
//! round, so steady-state execution performs no per-item — and after the
//! first round no per-round — allocation.
//!
//! ## Determinism
//!
//! Shards are **contiguous key ranges** (`len.div_ceil(shards)`-sized, in
//! key order), mirroring [`crate::par_map_slice`]. All combining APIs
//! visit shards in ascending shard order, so for a *fixed* shard count
//! every run is bit-identical. When the per-key computation is pure (no
//! cross-key accumulation inside the executor), results are additionally
//! identical across *different* shard counts — which is what lets the
//! inference engines produce bit-for-bit the same model at 1, 2, or 8
//! threads (the `sharded_engine` integration tests pin this down).
//! Cross-shard floating-point reduction ([`ShardedExecutor::reduce`]) is
//! deterministic per shard count, because the per-shard accumulators are
//! combined in shard order.

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;

use crate::num_threads;

/// A fixed set of shards, each owning a reusable scratch arena of type `S`.
///
/// Construct once per (engine, dataset) and reuse across rounds; the
/// scratch arenas persist between calls. See the module docs for the
/// determinism contract.
#[derive(Debug)]
pub struct ShardedExecutor<S> {
    shards: usize,
    scratch: Vec<S>,
}

impl<S: Default> ShardedExecutor<S> {
    /// An executor with one shard per ambient worker thread
    /// (respects [`crate::with_threads`] scopes at construction time).
    pub fn new() -> Self {
        Self::with_shards(num_threads())
    }

    /// An executor with exactly `shards` shards (at least 1).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards,
            scratch: (0..shards).map(|_| S::default()).collect(),
        }
    }
}

impl<S: Default> Default for ShardedExecutor<S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<S> ShardedExecutor<S> {
    /// Number of shards (fixed at construction).
    pub fn num_shards(&self) -> usize {
        self.shards
    }

    /// The scratch arenas, one per shard. After [`Self::run_shards`]
    /// returns, shard `i`'s arena holds whatever its worker left there —
    /// this is how shard-local outputs are handed back for an ordered
    /// merge.
    pub fn scratch(&self) -> &[S] {
        &self.scratch
    }

    /// Mutable access to the scratch arenas.
    pub fn scratch_mut(&mut self) -> &mut [S] {
        &mut self.scratch
    }

    /// The contiguous key ranges the shards cover for `len` keys, in shard
    /// order. Empty trailing shards are omitted. The same plan is used by
    /// every execution method, so a merge loop can re-derive which arena
    /// holds which keys.
    pub fn shard_ranges(&self, len: usize) -> Vec<Range<usize>> {
        let (shards, chunk) = self.plan(len);
        (0..shards)
            .map(|i| (i * chunk).min(len)..((i + 1) * chunk).min(len))
            .filter(|r| !r.is_empty())
            .collect()
    }

    /// Effective shard count and chunk size for `len` keys: never more
    /// shards than keys.
    fn plan(&self, len: usize) -> (usize, usize) {
        let shards = self.shards.min(len.max(1));
        (shards, len.div_ceil(shards))
    }
}

impl<S: Send> ShardedExecutor<S> {
    /// Run one task per shard over contiguous key ranges `0..len`.
    ///
    /// `f(scratch, shard_index, keys)` runs once per (non-empty) shard,
    /// with exclusive access to that shard's arena. Outputs are typically
    /// accumulated *into* the arena and merged afterwards via
    /// [`Self::scratch_mut`] + [`Self::shard_ranges`].
    pub fn run_shards<F>(&mut self, len: usize, f: F)
    where
        F: Fn(&mut S, usize, Range<usize>) + Sync,
    {
        let (shards, chunk) = self.plan(len);
        if shards <= 1 || len < 2 {
            f(&mut self.scratch[0], 0, 0..len);
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for (i, s) in self.scratch.iter_mut().enumerate().take(shards) {
                let lo = (i * chunk).min(len);
                let hi = ((i + 1) * chunk).min(len);
                if lo >= hi {
                    break;
                }
                scope.spawn(move || f(s, i, lo..hi));
            }
        });
    }

    /// Run one task per **caller-provided** contiguous key range — the
    /// chunk-at-a-time scheduling mode of the columnar EM engine: the
    /// caller partitions its key space along chunk boundaries (e.g. via
    /// [`balanced_ranges`] over a [`ChunkedCube`]'s per-chunk cell
    /// counts), and each worker receives one whole span plus the scratch
    /// arena matching the span's index. At most [`Self::num_shards`]
    /// ranges are accepted; ranges must be disjoint (they get exclusive
    /// arenas but may read shared inputs).
    ///
    /// Determinism matches [`Self::run_shards`]: arena `i` holds range
    /// `i`'s output, so a merge loop visiting ranges in order is
    /// reproducible for any partition, and bit-identical across
    /// partitions when the per-key computation is pure.
    ///
    /// [`ChunkedCube`]: https://docs.rs/kbt-datamodel
    pub fn run_ranges<F>(&mut self, ranges: &[Range<usize>], f: F)
    where
        F: Fn(&mut S, usize, Range<usize>) + Sync,
    {
        assert!(
            ranges.len() <= self.shards,
            "run_ranges: {} ranges > {} shards",
            ranges.len(),
            self.shards
        );
        if ranges.len() <= 1 {
            if let Some(r) = ranges.first() {
                f(&mut self.scratch[0], 0, r.clone());
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for (i, (s, r)) in self.scratch.iter_mut().zip(ranges).enumerate() {
                let r = r.clone();
                scope.spawn(move || f(s, i, r));
            }
        });
    }

    /// Keyed parallel map into a reusable output buffer:
    /// `out[k] = f(scratch, k)` for `k in 0..len`.
    ///
    /// `out` is cleared and resized (capacity is retained across rounds),
    /// so at steady state the call allocates nothing. Results are written
    /// in key order regardless of the shard count.
    pub fn map_keys<U, F>(&mut self, len: usize, out: &mut Vec<U>, f: F)
    where
        U: Send + Default,
        F: Fn(&mut S, usize) -> U + Sync,
    {
        out.clear();
        out.resize_with(len, U::default);
        let (shards, chunk) = self.plan(len);
        if shards <= 1 || len < 2 {
            let s = &mut self.scratch[0];
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = f(s, k);
            }
            return;
        }
        std::thread::scope(|scope| {
            let f = &f;
            for ((i, s), slots) in self
                .scratch
                .iter_mut()
                .enumerate()
                .take(shards)
                .zip(out.chunks_mut(chunk))
            {
                let base = i * chunk;
                scope.spawn(move || {
                    for (j, slot) in slots.iter_mut().enumerate() {
                        *slot = f(s, base + j);
                    }
                });
            }
        });
    }

    /// Keyed pair-accumulation reduce: fold each shard's key range into a
    /// **per-worker keyed map**, merge the shard maps **in ascending shard
    /// order**, and return the entries **sorted by key**.
    ///
    /// This is the shape of the paper's Map-Reduce rounds whose reduce key
    /// is *not* the sharding key (Section 3.4.2) — e.g. accumulating
    /// per-source-pair statistics while sharding by data item. Each worker
    /// owns a private `HashMap<K, V>` for its contiguous key range (no
    /// locking, no cross-shard writes); `fold(scratch, map, k)` may insert
    /// or update any number of map keys per input key. Afterwards the
    /// shard maps are combined with `merge(&mut acc, v)`, visiting shards
    /// in ascending order, so for a fixed shard count even
    /// non-commutative merges are reproducible — and when `merge` is
    /// exact (integer counters, max, set union), the result is identical
    /// across *any* shard count, which is what lets the sharded copy
    /// detector stay bit-for-bit equal to its serial reference.
    ///
    /// The final sort by `K` makes the output order independent of hash
    /// iteration order.
    pub fn reduce_keyed<K, V, F, M>(&mut self, len: usize, fold: F, merge: M) -> Vec<(K, V)>
    where
        K: Ord + Hash + Copy + Send,
        V: Send,
        F: Fn(&mut S, &mut HashMap<K, V>, usize) + Sync,
        M: Fn(&mut V, V),
    {
        let (shards, chunk) = self.plan(len);
        let mut maps: Vec<HashMap<K, V>> = Vec::with_capacity(shards);
        if shards <= 1 || len < 2 {
            let s = &mut self.scratch[0];
            let mut map = HashMap::new();
            for k in 0..len {
                fold(s, &mut map, k);
            }
            maps.push(map);
        } else {
            std::thread::scope(|scope| {
                let fold = &fold;
                let handles: Vec<_> = self
                    .scratch
                    .iter_mut()
                    .enumerate()
                    .take(shards)
                    .filter_map(|(i, s)| {
                        let lo = (i * chunk).min(len);
                        let hi = ((i + 1) * chunk).min(len);
                        (lo < hi).then(|| {
                            scope.spawn(move || {
                                let mut map = HashMap::new();
                                for k in lo..hi {
                                    fold(s, &mut map, k);
                                }
                                map
                            })
                        })
                    })
                    .collect();
                for h in handles {
                    maps.push(h.join().expect("kbt-flume shard worker panicked"));
                }
            });
        }
        // Merge in ascending shard order; each key's values arrive in
        // shard order, so `merge` sees a deterministic sequence.
        let mut it = maps.into_iter();
        let mut acc = it.next().unwrap_or_default();
        for map in it {
            for (k, v) in map {
                match acc.entry(k) {
                    std::collections::hash_map::Entry::Occupied(mut e) => merge(e.get_mut(), v),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(v);
                    }
                }
            }
        }
        let mut out: Vec<(K, V)> = acc.into_iter().collect();
        out.sort_unstable_by_key(|(k, _)| *k);
        out
    }

    /// Deterministic shard-reduce: fold each shard's key range from
    /// `identity()`, then combine the per-shard accumulators **in shard
    /// order**. Non-commutative (and floating-point) combines are
    /// reproducible for a fixed shard count.
    pub fn reduce<A, Id, F, C>(&mut self, len: usize, identity: Id, fold: F, combine: C) -> A
    where
        A: Send,
        Id: Fn() -> A + Sync,
        F: Fn(&mut S, A, usize) -> A + Sync,
        C: Fn(A, A) -> A,
    {
        let (shards, chunk) = self.plan(len);
        if shards <= 1 || len < 2 {
            let s = &mut self.scratch[0];
            return (0..len).fold(identity(), |a, k| fold(s, a, k));
        }
        let mut accs: Vec<A> = Vec::with_capacity(shards);
        std::thread::scope(|scope| {
            let fold = &fold;
            let identity = &identity;
            let handles: Vec<_> = self
                .scratch
                .iter_mut()
                .enumerate()
                .take(shards)
                .filter_map(|(i, s)| {
                    let lo = (i * chunk).min(len);
                    let hi = ((i + 1) * chunk).min(len);
                    (lo < hi).then(|| {
                        scope.spawn(move || (lo..hi).fold(identity(), |a, k| fold(s, a, k)))
                    })
                })
                .collect();
            for h in handles {
                accs.push(h.join().expect("kbt-flume shard worker panicked"));
            }
        });
        let mut it = accs.into_iter();
        let first = it.next().unwrap_or_else(&identity);
        it.fold(first, combine)
    }

    /// Pull-based chunk execution with a background prefetcher — the
    /// out-of-core scheduling mode: workers *pull* chunk indices from a
    /// shared cursor (`work(scratch, idx)` runs once per chunk with that
    /// worker's arena), while a dedicated prefetcher thread warms the
    /// chunks just ahead of the cursor (`prefetch(idx)`, e.g.
    /// `ChunkCache::prefetch`), overlapping the next chunk's disk read +
    /// decode with the current chunk's compute. The prefetcher stays at
    /// most `prefetch_depth` chunks ahead of the dispatch cursor
    /// (`0` disables it).
    ///
    /// Results come back **in chunk order**, regardless of which worker
    /// ran which chunk or in what real-time order chunks finished — so a
    /// caller that merges `Vec<T>` sequentially is bit-for-bit
    /// reproducible at any worker count. On error the first failure by
    /// **lowest chunk index** (among chunks that failed before the early
    /// stop) is returned and remaining chunks are abandoned.
    pub fn map_chunks<T, E, P, F>(
        &mut self,
        num_chunks: usize,
        prefetch_depth: usize,
        prefetch: P,
        work: F,
    ) -> Result<Vec<T>, E>
    where
        T: Send,
        E: Send,
        P: Fn(usize) + Sync,
        F: Fn(&mut S, usize) -> Result<T, E> + Sync,
    {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::sync::Mutex;

        if num_chunks == 0 {
            return Ok(Vec::new());
        }
        let workers = self.shards.min(num_chunks).max(1);
        if workers <= 1 && prefetch_depth == 0 {
            let s = &mut self.scratch[0];
            let mut out = Vec::with_capacity(num_chunks);
            for idx in 0..num_chunks {
                out.push(work(s, idx)?);
            }
            return Ok(out);
        }

        let cursor = AtomicUsize::new(0);
        let failed = AtomicBool::new(false);
        let error: Mutex<Option<(usize, E)>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<T>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            let (cursor, failed, error, slots) = (&cursor, &failed, &error, &slots);
            let (prefetch, work) = (&prefetch, &work);
            if prefetch_depth > 0 {
                scope.spawn(move || {
                    let mut next = 0usize;
                    // ordering: Relaxed — `failed` is an advisory
                    // early-abort hint and `cursor` only paces the
                    // prefetcher; neither publishes data (results and
                    // errors travel under their own mutexes, and
                    // `thread::scope` joins order everything at exit).
                    while next < num_chunks && !failed.load(Ordering::Relaxed) {
                        let cur = cursor.load(Ordering::Relaxed);
                        if next < cur {
                            // Workers overtook us; skip to the frontier.
                            next = cur;
                            continue;
                        }
                        if next >= cur.saturating_add(prefetch_depth) {
                            std::thread::sleep(std::time::Duration::from_micros(100));
                            continue;
                        }
                        prefetch(next);
                        next += 1;
                    }
                });
            }
            for s in self.scratch.iter_mut().take(workers) {
                scope.spawn(move || loop {
                    // ordering: Relaxed — advisory abort hint; the
                    // authoritative error is under the `error` mutex.
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    // ordering: Relaxed — the RMW itself is atomic, so
                    // every worker still draws a unique index; chunk
                    // results are handed over via the per-slot mutexes.
                    let idx = cursor.fetch_add(1, Ordering::Relaxed);
                    if idx >= num_chunks {
                        break;
                    }
                    match work(s, idx) {
                        Ok(t) => *slots[idx].lock().unwrap() = Some(t),
                        Err(e) => {
                            // ordering: Relaxed — see the loads above;
                            // the error value itself is mutex-guarded.
                            failed.store(true, Ordering::Relaxed);
                            let mut guard = error.lock().unwrap();
                            if guard.as_ref().is_none_or(|(i, _)| idx < *i) {
                                *guard = Some((idx, e));
                            }
                            break;
                        }
                    }
                });
            }
        });
        if let Some((_, e)) = error.into_inner().unwrap() {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap()
                    .expect("every chunk completed without error")
            })
            .collect())
    }
}

/// Partition `weights.len()` chunks into at most `parts` contiguous,
/// non-empty index ranges with near-equal total weight — the deterministic
/// planner feeding [`ShardedExecutor::run_ranges`]. Chunk `i` carries
/// `weights[i]` (e.g. its cube-cell count); a range closes as soon as the
/// cumulative weight reaches the next `total * (k+1) / parts` boundary.
/// Pure integer arithmetic, so the plan is identical on every platform.
/// Zero-weight inputs fall back to an even split by index.
pub fn balanced_ranges(weights: &[u64], parts: usize) -> Vec<Range<usize>> {
    let len = weights.len();
    let parts = parts.max(1);
    if len == 0 {
        return Vec::new();
    }
    let total: u128 = weights.iter().map(|&w| w as u128).sum();
    if total == 0 {
        let parts = parts.min(len);
        let chunk = len.div_ceil(parts);
        return (0..parts)
            .map(|i| (i * chunk).min(len)..((i + 1) * chunk).min(len))
            .filter(|r| !r.is_empty())
            .collect();
    }
    // Binary-search the smallest per-range weight cap that packs into at
    // most `parts` ranges (the classic contiguous-partition min-max), then
    // emit the greedy packing under that cap.
    let ranges_needed = |cap: u128| -> usize {
        let mut count = 1usize;
        let mut acc: u128 = 0;
        for &w in weights {
            let w = w as u128;
            if acc + w > cap {
                count += 1;
                acc = w;
            } else {
                acc += w;
            }
        }
        count
    };
    let mut lo = weights.iter().map(|&w| w as u128).max().unwrap();
    let mut hi = total;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if ranges_needed(mid) <= parts {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cap = lo;
    let mut out = Vec::with_capacity(parts.min(len));
    let mut start = 0usize;
    let mut acc: u128 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let w = w as u128;
        if acc + w > cap {
            out.push(start..i);
            start = i;
            acc = w;
        } else {
            acc += w;
        }
    }
    out.push(start..len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[derive(Default)]
    struct Buf {
        tmp: Vec<u64>,
        out: Vec<u64>,
    }

    #[test]
    fn map_keys_matches_serial_for_any_shard_count() {
        let serial: Vec<u64> = (0..10_000u64).map(|k| k * 3 + 1).collect();
        for shards in [1usize, 2, 3, 8, 33] {
            let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(shards);
            let mut out = Vec::new();
            exec.map_keys(10_000, &mut out, |_, k| k as u64 * 3 + 1);
            assert_eq!(out, serial, "shards = {shards}");
        }
    }

    #[test]
    fn map_keys_reuses_output_capacity() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(4);
        let mut out: Vec<u64> = Vec::new();
        exec.map_keys(5_000, &mut out, |_, k| k as u64);
        let cap = out.capacity();
        let ptr = out.as_ptr();
        exec.map_keys(5_000, &mut out, |_, k| k as u64 + 1);
        assert_eq!(out.capacity(), cap);
        assert_eq!(out.as_ptr(), ptr, "steady state must not reallocate");
        assert_eq!(out[17], 18);
    }

    #[test]
    fn scratch_arenas_persist_across_rounds() {
        let mut exec: ShardedExecutor<Buf> = ShardedExecutor::with_shards(3);
        // Round 1: grow each arena's tmp buffer.
        exec.run_shards(300, |s, _, range| {
            s.tmp.clear();
            s.tmp.extend(range.map(|k| k as u64));
        });
        let caps: Vec<usize> = exec.scratch().iter().map(|s| s.tmp.capacity()).collect();
        assert!(caps.iter().all(|&c| c >= 100));
        // Round 2 with the same sizes: capacity (and thus the allocation)
        // is retained.
        exec.run_shards(300, |s, _, range| {
            s.tmp.clear();
            s.tmp.extend(range.map(|k| k as u64 * 2));
        });
        for (s, cap) in exec.scratch().iter().zip(caps) {
            assert_eq!(s.tmp.capacity(), cap);
        }
    }

    #[test]
    fn run_shards_covers_all_keys_exactly_once() {
        let mut exec: ShardedExecutor<Buf> = ShardedExecutor::with_shards(7);
        exec.run_shards(1_003, |s, _, range| {
            s.out.clear();
            s.out.extend(range.map(|k| k as u64));
        });
        let mut all: Vec<u64> = Vec::new();
        for (s, range) in exec.scratch().iter().zip(exec.shard_ranges(1_003)) {
            assert_eq!(s.out.len(), range.len());
            all.extend(&s.out);
        }
        assert_eq!(all, (0..1_003u64).collect::<Vec<_>>());
    }

    #[test]
    fn shard_ranges_are_contiguous_and_complete() {
        for (shards, len) in [(1usize, 10usize), (4, 10), (8, 3), (3, 0), (5, 5)] {
            let exec: ShardedExecutor<()> = ShardedExecutor::with_shards(shards);
            let ranges = exec.shard_ranges(len);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, len, "shards={shards} len={len}");
        }
    }

    #[test]
    fn reduce_is_exact_and_order_stable() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(6);
        let sum = exec.reduce(100_001, || 0u64, |_, a, k| a + k as u64, |a, b| a + b);
        assert_eq!(sum, 100_000 * 100_001 / 2);
        // Non-commutative combine: concatenation must come out in key order.
        let digits = exec.reduce(
            10,
            String::new,
            |_, mut a, k| {
                a.push_str(&k.to_string());
                a
            },
            |a, b| a + &b,
        );
        assert_eq!(digits, "0123456789");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(4);
        let mut out: Vec<u32> = vec![1, 2, 3];
        exec.map_keys(0, &mut out, |_, _| 9u32);
        assert!(out.is_empty());
        exec.map_keys(1, &mut out, |_, k| k as u32 + 41);
        assert_eq!(out, vec![41]);
        assert_eq!(exec.reduce(0, || 5u32, |_, a, _| a + 1, |a, b| a + b), 5);
    }

    #[test]
    fn reduce_keyed_matches_serial_for_any_shard_count() {
        // Key k contributes to buckets k%7 and k%11: a reduce key that is
        // not the sharding key, like per-pair stats sharded by item.
        let mut serial: Vec<(u64, u64)> = {
            let mut m = std::collections::HashMap::new();
            for k in 0..5_000u64 {
                *m.entry(k % 7).or_insert(0) += k;
                *m.entry(k % 11).or_insert(0) += k * 3;
            }
            m.into_iter().collect()
        };
        serial.sort_unstable_by_key(|(k, _)| *k);
        for shards in [1usize, 2, 3, 8, 31] {
            let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(shards);
            let got = exec.reduce_keyed(
                5_000,
                |_, map, k| {
                    let k = k as u64;
                    *map.entry(k % 7).or_insert(0) += k;
                    *map.entry(k % 11).or_insert(0) += k * 3;
                },
                |a, b| *a += b,
            );
            assert_eq!(got, serial, "shards = {shards}");
        }
    }

    #[test]
    fn reduce_keyed_merges_in_shard_order() {
        // Non-commutative merge (string concatenation): per key, shard
        // contributions must arrive in ascending shard order.
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(4);
        let got = exec.reduce_keyed(
            8,
            |_, map, k| {
                map.entry(0u32)
                    .or_insert_with(String::new)
                    .push_str(&k.to_string());
            },
            |a, b| a.push_str(&b),
        );
        assert_eq!(got, vec![(0u32, "01234567".to_string())]);
    }

    #[test]
    fn reduce_keyed_empty_input() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(4);
        let got: Vec<(u32, u32)> = exec.reduce_keyed(0, |_, _, _| {}, |a, b| *a += b);
        assert!(got.is_empty());
    }

    #[test]
    fn new_respects_scoped_thread_override() {
        let exec: ShardedExecutor<()> = with_threads(Some(3), ShardedExecutor::new);
        assert_eq!(exec.num_shards(), 3);
    }

    #[test]
    fn run_ranges_covers_given_spans_with_matching_arenas() {
        let mut exec: ShardedExecutor<Buf> = ShardedExecutor::with_shards(4);
        let ranges = [0usize..3, 3..10, 10..11];
        exec.run_ranges(&ranges, |s, i, range| {
            s.out.clear();
            s.out.push(i as u64);
            s.out.extend(range.map(|k| k as u64));
        });
        for (i, r) in ranges.iter().enumerate() {
            let out = &exec.scratch()[i].out;
            assert_eq!(out[0], i as u64);
            assert_eq!(out[1..], r.clone().map(|k| k as u64).collect::<Vec<_>>());
        }
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)]
    fn run_ranges_handles_empty_and_single() {
        let mut exec: ShardedExecutor<Buf> = ShardedExecutor::with_shards(4);
        exec.run_ranges(&[], |_, _, _| panic!("no ranges, no work"));
        exec.run_ranges(&[5..9], |s, i, range| {
            assert_eq!(i, 0);
            s.out.clear();
            s.out.extend(range.map(|k| k as u64));
        });
        assert_eq!(exec.scratch()[0].out, vec![5, 6, 7, 8]);
    }

    #[test]
    #[should_panic(expected = "run_ranges")]
    fn run_ranges_rejects_more_ranges_than_shards() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(2);
        exec.run_ranges(&[0..1, 1..2, 2..3], |_, _, _| {});
    }

    #[test]
    fn balanced_ranges_tile_and_respect_parts() {
        for (weights, parts) in [
            (vec![1u64; 10], 3usize),
            (vec![100, 1, 1, 1, 1, 1, 1, 100], 4),
            (vec![5], 8),
            (vec![0, 0, 0, 0], 3),
            (vec![7, 0, 0, 9, 2], 2),
        ] {
            let ranges = balanced_ranges(&weights, parts);
            assert!(ranges.len() <= parts, "{weights:?} parts={parts}");
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next, weights.len(), "{weights:?} parts={parts}");
        }
        assert!(balanced_ranges(&[], 4).is_empty());
    }

    #[test]
    fn map_chunks_returns_chunk_order_at_any_worker_count() {
        let expect: Vec<u64> = (0..97u64).map(|i| i * i + 7).collect();
        for shards in [1usize, 2, 3, 8] {
            for depth in [0usize, 1, 4] {
                let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(shards);
                let got: Result<Vec<u64>, ()> =
                    exec.map_chunks(97, depth, |_| {}, |_, idx| Ok(idx as u64 * idx as u64 + 7));
                assert_eq!(got.unwrap(), expect, "shards={shards} depth={depth}");
            }
        }
    }

    #[test]
    fn map_chunks_surfaces_errors_and_stops() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for shards in [1usize, 4] {
            let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(shards);
            let ran = AtomicUsize::new(0);
            let got: Result<Vec<u64>, String> = exec.map_chunks(
                1_000,
                2,
                |_| {},
                |_, idx| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    if idx == 5 {
                        Err(format!("chunk {idx} failed"))
                    } else {
                        Ok(idx as u64)
                    }
                },
            );
            assert_eq!(got.unwrap_err(), "chunk 5 failed", "shards={shards}");
            assert!(
                ran.load(Ordering::SeqCst) < 1_000,
                "failure must stop the run early (shards={shards})"
            );
        }
    }

    #[test]
    fn map_chunks_prefetches_each_chunk_at_most_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(2);
        let prefetched = AtomicUsize::new(0);
        let got: Result<Vec<usize>, ()> = exec.map_chunks(
            50,
            4,
            |_| {
                prefetched.fetch_add(1, Ordering::SeqCst);
            },
            |_, idx| {
                std::thread::sleep(std::time::Duration::from_micros(50));
                Ok(idx)
            },
        );
        assert_eq!(got.unwrap(), (0..50).collect::<Vec<_>>());
        let n = prefetched.load(Ordering::SeqCst);
        assert!(n <= 50, "each chunk prefetched at most once, got {n}");
        assert!(n > 0, "prefetcher must run when depth > 0");
    }

    #[test]
    fn map_chunks_empty_input() {
        let mut exec: ShardedExecutor<()> = ShardedExecutor::with_shards(4);
        let got: Result<Vec<u8>, ()> = exec.map_chunks(0, 4, |_| {}, |_, _| Ok(0));
        assert!(got.unwrap().is_empty());
    }

    #[test]
    fn balanced_ranges_balance_skewed_weights() {
        // One hot chunk in a sea of small ones: the hot chunk must get
        // (close to) its own part instead of an even index split.
        let mut weights = vec![1u64; 63];
        weights.push(1_000);
        let ranges = balanced_ranges(&weights, 4);
        let loads: Vec<u64> = ranges
            .iter()
            .map(|r| weights[r.clone()].iter().sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        assert!(
            max <= 1_000 + 63,
            "no part may exceed hot-chunk + leftovers: {loads:?}"
        );
        assert!(
            loads[..loads.len() - 1].iter().all(|&l| l < 100),
            "small chunks must spread over the early parts: {loads:?}"
        );
    }
}
