//! Bridge between the typed knowledge base and the dense id spaces of the
//! observation cube.
//!
//! The corpus simulators work in dense `u32` id spaces; the paper's gold
//! standard comes from Freebase's typed world. [`TypedWorld`] materializes
//! a [`KnowledgeBase`] over a dense (subject, predicate, value) geometry so
//! that the LCWA and type-check labelers of this crate can be run against
//! any cube that shares the geometry — the full Section 5.3.1 pipeline
//! with real schema objects instead of raw id arithmetic.

use kbt_datamodel::{ItemId, ValueId};

use crate::base::{EntityId, EntityType, KnowledgeBase, LcwaLabel, ObjectValue, PredicateSchema};
use crate::typecheck::{typecheck, TypeViolation};

/// A typed world over dense ids: subject `s` ↦ entity, predicate `p` ↦
/// schema, value `v` ↦ object.
#[derive(Debug, Clone)]
pub struct TypedWorld {
    kb: KnowledgeBase,
    subjects: Vec<EntityId>,
    /// Value id → object; values in the type-error band map to objects
    /// that violate their predicate's schema.
    objects: Vec<ObjectValue>,
    num_predicates: u32,
}

/// Entity types used by the generated world.
const T_SUBJECT: EntityType = EntityType(0);
const T_OBJECT: EntityType = EntityType(1);
const T_ALIEN: EntityType = EntityType(2);

impl TypedWorld {
    /// Build a typed world: `num_subjects` subject entities,
    /// `num_predicates` entity-valued predicates, `num_normal_values`
    /// well-typed object entities, and `num_type_error_values` objects of
    /// an incompatible type (the reserved band of the corpus simulator).
    pub fn new(
        num_subjects: u32,
        num_predicates: u32,
        num_normal_values: u32,
        num_type_error_values: u32,
    ) -> Self {
        let mut kb = KnowledgeBase::new();
        let subjects: Vec<EntityId> = (0..num_subjects)
            .map(|_| kb.add_entity(T_SUBJECT))
            .collect();
        for p in 0..num_predicates {
            kb.add_predicate(PredicateSchema {
                name: format!("predicate_{p}"),
                subject_type: T_SUBJECT,
                object: crate::base::ValueKind::Entity(T_OBJECT),
                functional: true,
            });
        }
        let mut objects = Vec::with_capacity((num_normal_values + num_type_error_values) as usize);
        for _ in 0..num_normal_values {
            objects.push(ObjectValue::Entity(kb.add_entity(T_OBJECT)));
        }
        for _ in 0..num_type_error_values {
            // Wrong-typed entities: any triple carrying them fails rule 2.
            objects.push(ObjectValue::Entity(kb.add_entity(T_ALIEN)));
        }
        Self {
            kb,
            subjects,
            objects,
            num_predicates,
        }
    }

    /// The underlying knowledge base.
    pub fn kb(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// Record a dense-id fact `(item, value)` in the KB.
    pub fn assert_fact(&mut self, item: ItemId, value: ValueId) {
        let (s, p) = self.split(item);
        self.kb.assert_fact(
            self.subjects[s as usize],
            crate::base::PredicateId(p),
            self.objects[value.index()],
        );
    }

    /// LCWA label of a dense-id triple (Section 5.3.1, first method).
    pub fn lcwa(&self, item: ItemId, value: ValueId) -> LcwaLabel {
        let (s, p) = self.split(item);
        self.kb.lcwa_label(
            self.subjects[s as usize],
            crate::base::PredicateId(p),
            &self.objects[value.index()],
        )
    }

    /// Type-check a dense-id triple (Section 5.3.1, second method).
    pub fn typecheck(&self, item: ItemId, value: ValueId) -> Result<(), TypeViolation> {
        let (s, p) = self.split(item);
        typecheck(
            &self.kb,
            self.subjects[s as usize],
            crate::base::PredicateId(p),
            &self.objects[value.index()],
        )
    }

    /// Combined gold label per the paper: type violations are false;
    /// otherwise LCWA; `None` where the KB is silent.
    pub fn gold_label(&self, item: ItemId, value: ValueId) -> Option<bool> {
        if self.typecheck(item, value).is_err() {
            return Some(false);
        }
        match self.lcwa(item, value) {
            LcwaLabel::True => Some(true),
            LcwaLabel::False => Some(false),
            LcwaLabel::Unknown => None,
        }
    }

    fn split(&self, item: ItemId) -> (u32, u32) {
        (item.0 / self.num_predicates, item.0 % self.num_predicates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> TypedWorld {
        TypedWorld::new(10, 4, 20, 3)
    }

    #[test]
    fn facts_label_true_under_lcwa() {
        let mut w = world();
        let item = ItemId::new(5);
        w.assert_fact(item, ValueId::new(7));
        assert_eq!(w.lcwa(item, ValueId::new(7)), LcwaLabel::True);
        assert_eq!(w.lcwa(item, ValueId::new(8)), LcwaLabel::False);
        assert_eq!(w.lcwa(ItemId::new(6), ValueId::new(7)), LcwaLabel::Unknown);
    }

    #[test]
    fn type_error_band_fails_typecheck() {
        let w = world();
        // Values 20..23 are the alien band.
        assert!(w.typecheck(ItemId::new(0), ValueId::new(19)).is_ok());
        assert_eq!(
            w.typecheck(ItemId::new(0), ValueId::new(20)),
            Err(TypeViolation::ObjectTypeMismatch)
        );
    }

    #[test]
    fn gold_label_combines_both_methods() {
        let mut w = world();
        let item = ItemId::new(3);
        w.assert_fact(item, ValueId::new(2));
        assert_eq!(w.gold_label(item, ValueId::new(2)), Some(true));
        assert_eq!(w.gold_label(item, ValueId::new(3)), Some(false)); // LCWA false
        assert_eq!(w.gold_label(item, ValueId::new(21)), Some(false)); // type error
        assert_eq!(w.gold_label(ItemId::new(9), ValueId::new(2)), None); // unknown
    }

    #[test]
    fn type_errors_are_false_even_without_kb_facts() {
        let w = world();
        // No facts at all — but a type violation is still a gold false.
        assert_eq!(w.gold_label(ItemId::new(1), ValueId::new(22)), Some(false));
        assert_eq!(w.gold_label(ItemId::new(1), ValueId::new(0)), None);
    }

    #[test]
    fn kb_size_matches_world_geometry() {
        let w = world();
        assert_eq!(w.kb().num_entities(), 10 + 20 + 3);
        assert_eq!(w.kb().num_predicates(), 4);
    }
}
