//! Type-check gold labeling (Section 5.3.1, second method).
//!
//! A triple `(s, p, o)` is labeled false — and counted as an *extraction
//! mistake* — if
//!
//! 1. `s = o` (subject equals object),
//! 2. the type of `s` or `o` is incompatible with the predicate, or
//! 3. `o` is outside the predicate's expected range (e.g. the weight of an
//!    athlete over 1000 pounds).

use crate::base::{EntityId, KnowledgeBase, ObjectValue, PredicateId, ValueKind};

/// Why a triple failed type checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeViolation {
    /// Rule 1: subject and object are the same entity.
    SubjectEqualsObject,
    /// Rule 2: subject type does not match the predicate's schema.
    SubjectTypeMismatch,
    /// Rule 2: object kind/type does not match the predicate's schema.
    ObjectTypeMismatch,
    /// Rule 3: numeric/date object outside the plausible range.
    OutOfRange,
}

/// Check one triple; `Ok(())` means no violation.
pub fn typecheck(
    kb: &KnowledgeBase,
    s: EntityId,
    p: PredicateId,
    o: &ObjectValue,
) -> Result<(), TypeViolation> {
    let schema = kb.predicate(p);
    if let ObjectValue::Entity(oe) = o {
        if *oe == s {
            return Err(TypeViolation::SubjectEqualsObject);
        }
    }
    if kb.entity_type(s) != schema.subject_type {
        return Err(TypeViolation::SubjectTypeMismatch);
    }
    match (&schema.object, o) {
        (ValueKind::Entity(want), ObjectValue::Entity(e)) => {
            if kb.entity_type(*e) != *want {
                return Err(TypeViolation::ObjectTypeMismatch);
            }
        }
        (ValueKind::Number { min, max }, ObjectValue::Number(x)) => {
            if !x.is_finite() || x < min || x > max {
                return Err(TypeViolation::OutOfRange);
            }
        }
        (ValueKind::Year { min, max }, ObjectValue::Year(y)) => {
            if y < min || y > max {
                return Err(TypeViolation::OutOfRange);
            }
        }
        (ValueKind::Text, ObjectValue::Text(_)) => {}
        _ => return Err(TypeViolation::ObjectTypeMismatch),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::base::{EntityType, PredicateSchema};

    struct Fixture {
        kb: KnowledgeBase,
        person: EntityId,
        person2: EntityId,
        country: EntityId,
        nationality: PredicateId,
        weight: PredicateId,
        born: PredicateId,
    }

    fn fixture() -> Fixture {
        let mut kb = KnowledgeBase::new();
        let t_person = EntityType(0);
        let t_country = EntityType(1);
        let person = kb.add_entity(t_person);
        let person2 = kb.add_entity(t_person);
        let country = kb.add_entity(t_country);
        let nationality = kb.add_predicate(PredicateSchema {
            name: "nationality".into(),
            subject_type: t_person,
            object: ValueKind::Entity(t_country),
            functional: true,
        });
        let weight = kb.add_predicate(PredicateSchema {
            name: "weight_lbs".into(),
            subject_type: t_person,
            object: ValueKind::Number {
                min: 0.0,
                max: 1000.0,
            },
            functional: true,
        });
        let born = kb.add_predicate(PredicateSchema {
            name: "born_year".into(),
            subject_type: t_person,
            object: ValueKind::Year {
                min: 1000,
                max: 2026,
            },
            functional: true,
        });
        Fixture {
            kb,
            person,
            person2,
            country,
            nationality,
            weight,
            born,
        }
    }

    #[test]
    fn valid_triples_pass() {
        let f = fixture();
        assert_eq!(
            typecheck(
                &f.kb,
                f.person,
                f.nationality,
                &ObjectValue::Entity(f.country)
            ),
            Ok(())
        );
        assert_eq!(
            typecheck(&f.kb, f.person, f.weight, &ObjectValue::Number(180.0)),
            Ok(())
        );
        assert_eq!(
            typecheck(&f.kb, f.person, f.born, &ObjectValue::Year(1961)),
            Ok(())
        );
    }

    #[test]
    fn subject_equals_object_is_caught() {
        let f = fixture();
        assert_eq!(
            typecheck(
                &f.kb,
                f.person,
                f.nationality,
                &ObjectValue::Entity(f.person)
            ),
            Err(TypeViolation::SubjectEqualsObject)
        );
    }

    #[test]
    fn wrong_entity_type_object_is_caught() {
        let f = fixture();
        // Object is a person, predicate expects a country.
        assert_eq!(
            typecheck(
                &f.kb,
                f.person,
                f.nationality,
                &ObjectValue::Entity(f.person2)
            ),
            Err(TypeViolation::ObjectTypeMismatch)
        );
    }

    #[test]
    fn wrong_subject_type_is_caught() {
        let mut f = fixture();
        let other_country = f.kb.add_entity(EntityType(1));
        // Subject is a country; nationality requires a person subject.
        assert_eq!(
            typecheck(
                &f.kb,
                f.country,
                f.nationality,
                &ObjectValue::Entity(other_country)
            ),
            Err(TypeViolation::SubjectTypeMismatch)
        );
    }

    #[test]
    fn athletes_over_1000_pounds_are_rejected() {
        let f = fixture();
        assert_eq!(
            typecheck(&f.kb, f.person, f.weight, &ObjectValue::Number(1200.0)),
            Err(TypeViolation::OutOfRange)
        );
        assert_eq!(
            typecheck(&f.kb, f.person, f.weight, &ObjectValue::Number(f64::NAN)),
            Err(TypeViolation::OutOfRange)
        );
    }

    #[test]
    fn kind_mismatch_is_caught() {
        let f = fixture();
        assert_eq!(
            typecheck(&f.kb, f.person, f.weight, &ObjectValue::Year(180)),
            Err(TypeViolation::ObjectTypeMismatch)
        );
        assert_eq!(
            typecheck(&f.kb, f.person, f.born, &ObjectValue::Year(999)),
            Err(TypeViolation::OutOfRange)
        );
    }
}
