//! The knowledge base proper: typed entities, predicate schemas, facts.
//!
//! Mirrors the slice of Freebase the paper relies on: entities have types
//! ("mids" with a notable type), predicates are predefined with an
//! expected subject type, object kind, and — for numeric predicates — a
//! sane value range (the paper's example: an athlete's weight must not
//! exceed 1000 pounds). Facts follow the single-truth assumption used
//! throughout the paper.

use std::collections::HashMap;

/// Dense id of an entity in the KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityId(pub u32);

/// Dense id of a predicate in the KB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PredicateId(pub u32);

/// Entity type (person, place, …) — a small closed set is enough for the
/// simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntityType(pub u16);

/// The kind of value a predicate expects, with enough structure for the
/// type-check labeler.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ValueKind {
    /// An entity reference that must have the given type.
    Entity(EntityType),
    /// A number constrained to `[min, max]`.
    Number {
        /// Smallest plausible value.
        min: f64,
        /// Largest plausible value.
        max: f64,
    },
    /// A calendar year in `[min, max]` (dates are modeled as years).
    Year {
        /// Earliest plausible year.
        min: i32,
        /// Latest plausible year.
        max: i32,
    },
    /// A free-form string (no type constraint beyond not being an entity).
    Text,
}

/// Schema of one predicate.
#[derive(Debug, Clone, PartialEq)]
pub struct PredicateSchema {
    /// Human-readable name (e.g. `date_of_birth`).
    pub name: String,
    /// Required subject type.
    pub subject_type: EntityType,
    /// Expected object kind.
    pub object: ValueKind,
    /// Functional predicates have exactly one true value per subject
    /// (nationality, date-of-birth); the paper adopts single-truth even
    /// for non-functional ones.
    pub functional: bool,
}

/// A typed object value as it appears in a triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ObjectValue {
    /// Reference to a KB entity.
    Entity(EntityId),
    /// A raw number.
    Number(f64),
    /// A year.
    Year(i32),
    /// An opaque string token (interned elsewhere).
    Text(u32),
}

/// The Freebase-like knowledge base.
#[derive(Debug, Default, Clone)]
pub struct KnowledgeBase {
    entity_types: Vec<EntityType>,
    predicates: Vec<PredicateSchema>,
    /// Single-truth facts: (subject, predicate) → object.
    facts: HashMap<(EntityId, PredicateId), ObjectValue>,
}

/// LCWA label for a candidate triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LcwaLabel {
    /// The triple is in the KB.
    True,
    /// The KB knows a different object for this (subject, predicate) —
    /// under the local closed-world assumption the triple is false.
    False,
    /// The KB knows nothing about this (subject, predicate).
    Unknown,
}

impl KnowledgeBase {
    /// Create an empty KB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an entity with its type; returns its id.
    pub fn add_entity(&mut self, ty: EntityType) -> EntityId {
        self.entity_types.push(ty);
        EntityId(self.entity_types.len() as u32 - 1)
    }

    /// Add a predicate schema; returns its id.
    pub fn add_predicate(&mut self, schema: PredicateSchema) -> PredicateId {
        self.predicates.push(schema);
        PredicateId(self.predicates.len() as u32 - 1)
    }

    /// Record a fact (single truth: later writes overwrite).
    pub fn assert_fact(&mut self, s: EntityId, p: PredicateId, o: ObjectValue) {
        self.facts.insert((s, p), o);
    }

    /// Number of entities.
    pub fn num_entities(&self) -> usize {
        self.entity_types.len()
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Number of facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// Type of entity `e`.
    pub fn entity_type(&self, e: EntityId) -> EntityType {
        self.entity_types[e.0 as usize]
    }

    /// Schema of predicate `p`.
    pub fn predicate(&self, p: PredicateId) -> &PredicateSchema {
        &self.predicates[p.0 as usize]
    }

    /// The KB's object for `(s, p)`, if known.
    pub fn fact(&self, s: EntityId, p: PredicateId) -> Option<&ObjectValue> {
        self.facts.get(&(s, p))
    }

    /// The Local-Closed-World-Assumption labeler of Section 5.3.1.
    pub fn lcwa_label(&self, s: EntityId, p: PredicateId, o: &ObjectValue) -> LcwaLabel {
        match self.facts.get(&(s, p)) {
            Some(known) if known == o => LcwaLabel::True,
            Some(_) => LcwaLabel::False,
            None => LcwaLabel::Unknown,
        }
    }

    /// Iterate all facts.
    pub fn facts(&self) -> impl Iterator<Item = (EntityId, PredicateId, &ObjectValue)> {
        self.facts.iter().map(|((s, p), o)| (*s, *p, o))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_kb() -> (KnowledgeBase, EntityId, EntityId, PredicateId) {
        let mut kb = KnowledgeBase::new();
        let person = EntityType(0);
        let country = EntityType(1);
        let obama = kb.add_entity(person);
        let usa = kb.add_entity(country);
        let nationality = kb.add_predicate(PredicateSchema {
            name: "nationality".into(),
            subject_type: person,
            object: ValueKind::Entity(country),
            functional: true,
        });
        kb.assert_fact(obama, nationality, ObjectValue::Entity(usa));
        (kb, obama, usa, nationality)
    }

    #[test]
    fn facts_round_trip() {
        let (kb, obama, usa, nationality) = small_kb();
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(kb.fact(obama, nationality), Some(&ObjectValue::Entity(usa)));
        assert_eq!(kb.entity_type(usa), EntityType(1));
        assert_eq!(kb.predicate(nationality).name, "nationality");
    }

    #[test]
    fn lcwa_labels_known_value_true() {
        let (kb, obama, usa, nationality) = small_kb();
        assert_eq!(
            kb.lcwa_label(obama, nationality, &ObjectValue::Entity(usa)),
            LcwaLabel::True
        );
    }

    #[test]
    fn lcwa_labels_conflicting_value_false() {
        let (mut kb, obama, _usa, nationality) = small_kb();
        let kenya = kb.add_entity(EntityType(1));
        assert_eq!(
            kb.lcwa_label(obama, nationality, &ObjectValue::Entity(kenya)),
            LcwaLabel::False
        );
    }

    #[test]
    fn lcwa_labels_unseen_subject_predicate_unknown() {
        let (mut kb, _obama, usa, nationality) = small_kb();
        let merkel = kb.add_entity(EntityType(0));
        assert_eq!(
            kb.lcwa_label(merkel, nationality, &ObjectValue::Entity(usa)),
            LcwaLabel::Unknown
        );
    }

    #[test]
    fn single_truth_overwrites() {
        let (mut kb, obama, _usa, nationality) = small_kb();
        let kenya = kb.add_entity(EntityType(1));
        kb.assert_fact(obama, nationality, ObjectValue::Entity(kenya));
        assert_eq!(kb.num_facts(), 1);
        assert_eq!(
            kb.lcwa_label(obama, nationality, &ObjectValue::Entity(kenya)),
            LcwaLabel::True
        );
    }
}
