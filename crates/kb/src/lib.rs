//! # kbt-kb
//!
//! A Freebase-like knowledge-base substrate (the paper's source of gold
//! labels and quality initialization — Section 5.3.1).
//!
//! The real system uses Freebase [2] both to seed true facts and to label
//! extracted triples. This crate provides:
//!
//! * [`KnowledgeBase`] — typed entities, predicates with expected object
//!   types and numeric ranges, and (single-truth) facts,
//! * [`KnowledgeBase::lcwa_label`] — the Local-Closed-World-Assumption
//!   labeler: a triple `(s, p, o)` is `true` if the KB contains it, `false`
//!   if the KB knows a *different* object for `(s, p)`, and unknown
//!   otherwise,
//! * [`typecheck`] — the type-check labeler: triples with `s = o`, a
//!   type-incompatible object, or an out-of-range numeric object are false
//!   *and* extraction mistakes.

#![warn(missing_docs)]

pub mod base;
pub mod bridge;
pub mod typecheck;

pub use base::{
    EntityId, EntityType, KnowledgeBase, LcwaLabel, ObjectValue, PredicateId, PredicateSchema,
    ValueKind,
};
pub use bridge::TypedWorld;
pub use typecheck::{typecheck, TypeViolation};
