//! Precision–recall curves and AUC-PR (Section 5.1.1, Figure 9).
//!
//! Triples are ordered by predicted probability (descending); sweeping a
//! threshold over the ranking yields one (recall, precision) point per
//! distinct score. AUC-PR integrates the curve by the trapezoidal rule
//! over recall.

/// A precision–recall curve.
#[derive(Debug, Clone, PartialEq)]
pub struct PrCurve {
    /// `(recall, precision)` points, recall non-decreasing.
    pub points: Vec<(f64, f64)>,
}

impl PrCurve {
    /// Build the curve from labeled predictions. Ties in predicted score
    /// are processed as one threshold step. Returns `None` if there are no
    /// positive labels (precision/recall undefined).
    pub fn from_labels(pred: &[f64], truth: &[bool]) -> Option<PrCurve> {
        assert_eq!(pred.len(), truth.len());
        let total_pos = truth.iter().filter(|&&t| t).count();
        if total_pos == 0 {
            return None;
        }
        let mut order: Vec<usize> = (0..pred.len()).collect();
        order.sort_by(|&a, &b| pred[b].partial_cmp(&pred[a]).expect("NaN score"));

        let mut points = Vec::new();
        let mut tp = 0usize;
        let mut fp = 0usize;
        let mut i = 0;
        while i < order.len() {
            // Consume a tie block.
            let score = pred[order[i]];
            while i < order.len() && pred[order[i]] == score {
                if truth[order[i]] {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            let recall = tp as f64 / total_pos as f64;
            let precision = tp as f64 / (tp + fp) as f64;
            points.push((recall, precision));
        }
        Some(PrCurve { points })
    }

    /// Build from a partial gold standard (unlabeled entries skipped).
    pub fn from_partial_labels(pred: &[f64], truth: &[Option<bool>]) -> Option<PrCurve> {
        assert_eq!(pred.len(), truth.len());
        let mut p = Vec::new();
        let mut t = Vec::new();
        for (x, l) in pred.iter().zip(truth) {
            if let Some(l) = l {
                p.push(*x);
                t.push(*l);
            }
        }
        Self::from_labels(&p, &t)
    }

    /// Area under the curve by the trapezoidal rule over recall, anchored
    /// at recall 0 with the first point's precision.
    pub fn auc(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        let mut prev_r = 0.0;
        let mut prev_p = self.points[0].1;
        for &(r, p) in &self.points {
            area += (r - prev_r) * (p + prev_p) / 2.0;
            prev_r = r;
            prev_p = p;
        }
        area
    }
}

/// Convenience: AUC-PR from labeled predictions.
pub fn auc_pr(pred: &[f64], truth: &[bool]) -> Option<f64> {
    PrCurve::from_labels(pred, truth).map(|c| c.auc())
}

/// Convenience: AUC-PR against a partial gold standard.
pub fn auc_pr_partial(pred: &[f64], truth: &[Option<bool>]) -> Option<f64> {
    PrCurve::from_partial_labels(pred, truth).map(|c| c.auc())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_has_auc_one() {
        let pred = [0.9, 0.8, 0.2, 0.1];
        let truth = [true, true, false, false];
        let auc = auc_pr(&pred, &truth).unwrap();
        assert!((auc - 1.0).abs() < 1e-9, "auc = {auc}");
    }

    #[test]
    fn inverted_ranking_has_low_auc() {
        let pred = [0.1, 0.2, 0.8, 0.9];
        let truth = [true, true, false, false];
        let auc = auc_pr(&pred, &truth).unwrap();
        assert!(auc < 0.5, "auc = {auc}");
    }

    #[test]
    fn recall_is_nondecreasing_and_reaches_one() {
        let pred = [0.9, 0.7, 0.7, 0.4, 0.2, 0.1];
        let truth = [true, false, true, true, false, true];
        let c = PrCurve::from_labels(&pred, &truth).unwrap();
        let mut prev = 0.0;
        for &(r, p) in &c.points {
            assert!(r >= prev);
            assert!((0.0..=1.0).contains(&p));
            prev = r;
        }
        assert!((c.points.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_are_one_step() {
        let pred = [0.5, 0.5, 0.5];
        let truth = [true, false, true];
        let c = PrCurve::from_labels(&pred, &truth).unwrap();
        assert_eq!(c.points.len(), 1);
        assert_eq!(c.points[0], (1.0, 2.0 / 3.0));
    }

    #[test]
    fn no_positives_is_none() {
        assert_eq!(auc_pr(&[0.5], &[false]), None);
        assert_eq!(auc_pr_partial(&[0.5], &[None]), None);
    }

    #[test]
    fn random_scores_give_auc_near_base_rate() {
        // With scores independent of labels, AUC-PR ≈ the positive rate.
        let n = 20_000;
        let mut pred = Vec::with_capacity(n);
        let mut truth = Vec::with_capacity(n);
        let mut state = 88172645463325252u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for _ in 0..n {
            pred.push(rng());
            truth.push(rng() < 0.3);
        }
        let auc = auc_pr(&pred, &truth).unwrap();
        assert!((auc - 0.3).abs() < 0.03, "auc = {auc}");
    }
}
