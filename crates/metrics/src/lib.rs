//! # kbt-metrics
//!
//! Evaluation metrics for KBT experiments (Section 5.1.1):
//!
//! * [`square_loss`] family — SqV (triple truthfulness), SqC (extraction
//!   correctness), SqA (source accuracy),
//! * [`wdev`] — weighted deviation with the paper's non-uniform buckets,
//! * [`PrCurve`] / [`auc_pr`] — precision–recall curve and its area,
//! * [`calibration_curve`] — Figure 8 calibration plots,
//! * [`count_histogram`] / [`probability_histogram`] — Figures 5–7,
//! * [`pearson`] / [`spearman`] — the Figure 10 orthogonality check,
//! * [`coverage`] — the Cov metric.
//!
//! Every metric has a `_partial` variant that evaluates against a partial
//! gold standard (`Option<bool>` labels), since the LCWA gold standard of
//! Section 5.3.1 labels only a fraction of triples.

#![warn(missing_docs)]

pub mod calibration;
pub mod correlation;
pub mod hist;
pub mod pr;
pub mod square;
pub mod wdev;

pub use calibration::{calibration_curve, calibration_curve_partial, CalibrationPoint};
pub use correlation::{pearson, spearman};
pub use hist::{count_histogram, probability_histogram, Histogram};
pub use pr::{auc_pr, auc_pr_partial, PrCurve};
pub use square::{square_loss, square_loss_binary, square_loss_partial};
pub use wdev::{bucketize, paper_bucket_edges, wdev, wdev_partial, Bucket};

/// The Cov metric: the fraction of `flags` that are set.
pub fn coverage(flags: &[bool]) -> f64 {
    if flags.is_empty() {
        return 0.0;
    }
    flags.iter().filter(|&&c| c).count() as f64 / flags.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_counts_set_flags() {
        assert_eq!(coverage(&[]), 0.0);
        assert_eq!(coverage(&[true, true, false, false]), 0.5);
        assert_eq!(coverage(&[true]), 1.0);
    }
}
