//! Calibration curves (Figure 8): predicted probability versus empirical
//! accuracy over uniform buckets.

/// One point of a calibration curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// Mean predicted probability of the bucket.
    pub predicted: f64,
    /// Empirical accuracy (the "real probability") of the bucket.
    pub actual: f64,
    /// Number of labeled predictions in the bucket.
    pub count: usize,
}

/// Compute a calibration curve over `buckets` uniform probability bins.
/// Empty bins are omitted. Points are ordered by bin.
pub fn calibration_curve(pred: &[f64], truth: &[bool], buckets: usize) -> Vec<CalibrationPoint> {
    assert_eq!(pred.len(), truth.len());
    assert!(buckets > 0);
    let mut count = vec![0usize; buckets];
    let mut psum = vec![0.0f64; buckets];
    let mut tsum = vec![0usize; buckets];
    for (&p, &t) in pred.iter().zip(truth) {
        let p = p.clamp(0.0, 1.0);
        let b = ((p * buckets as f64) as usize).min(buckets - 1);
        count[b] += 1;
        psum[b] += p;
        tsum[b] += t as usize;
    }
    (0..buckets)
        .filter(|&b| count[b] > 0)
        .map(|b| CalibrationPoint {
            predicted: psum[b] / count[b] as f64,
            actual: tsum[b] as f64 / count[b] as f64,
            count: count[b],
        })
        .collect()
}

/// Calibration curve against a partial gold standard.
pub fn calibration_curve_partial(
    pred: &[f64],
    truth: &[Option<bool>],
    buckets: usize,
) -> Vec<CalibrationPoint> {
    let mut p = Vec::new();
    let mut t = Vec::new();
    for (x, l) in pred.iter().zip(truth) {
        if let Some(l) = l {
            p.push(*x);
            t.push(*l);
        }
    }
    calibration_curve(&p, &t, buckets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_predictions_lie_on_the_diagonal() {
        // 10k predictions at p = 0.7 of which exactly 70% are true.
        let pred = vec![0.7; 10_000];
        let truth: Vec<bool> = (0..10_000).map(|i| i % 10 < 7).collect();
        let curve = calibration_curve(&pred, &truth, 10);
        assert_eq!(curve.len(), 1);
        assert!((curve[0].predicted - 0.7).abs() < 1e-9);
        assert!((curve[0].actual - 0.7).abs() < 1e-9);
        assert_eq!(curve[0].count, 10_000);
    }

    #[test]
    fn buckets_partition_the_unit_interval() {
        let pred: Vec<f64> = (0..100).map(|i| i as f64 / 99.0).collect();
        let truth = vec![true; 100];
        let curve = calibration_curve(&pred, &truth, 10);
        let total: usize = curve.iter().map(|c| c.count).sum();
        assert_eq!(total, 100);
        assert_eq!(curve.len(), 10);
    }

    #[test]
    fn exact_one_goes_to_last_bucket() {
        let curve = calibration_curve(&[1.0], &[true], 10);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].predicted, 1.0);
    }

    #[test]
    fn partial_variant_skips_unlabeled() {
        let curve = calibration_curve_partial(&[0.9, 0.1], &[Some(true), None], 10);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].count, 1);
    }

    #[test]
    fn empty_input_yields_empty_curve() {
        assert!(calibration_curve(&[], &[], 10).is_empty());
        assert!(calibration_curve(&[], &[], 1).is_empty());
        assert!(calibration_curve_partial(&[], &[], 10).is_empty());
    }

    #[test]
    fn single_bucket_collapses_everything() {
        let pred = [0.0, 0.25, 0.5, 0.99, 1.0];
        let truth = [false, false, true, true, true];
        let curve = calibration_curve(&pred, &truth, 1);
        assert_eq!(curve.len(), 1);
        let c = curve[0];
        assert_eq!(c.count, 5);
        assert!((c.predicted - pred.iter().sum::<f64>() / 5.0).abs() < 1e-12);
        assert!((c.actual - 0.6).abs() < 1e-12);
    }

    #[test]
    fn all_none_partial_labels_yield_empty_curve() {
        let pred = [0.1, 0.5, 0.9];
        let truth: [Option<bool>; 3] = [None, None, None];
        assert!(calibration_curve_partial(&pred, &truth, 10).is_empty());
        // …even with a single bucket.
        assert!(calibration_curve_partial(&pred, &truth, 1).is_empty());
    }

    #[test]
    fn out_of_range_predictions_are_clamped_into_the_curve() {
        // Degenerate upstream scores (slightly out of [0, 1]) must land in
        // the edge buckets rather than index out of bounds.
        let curve = calibration_curve(&[-0.3, 1.7], &[false, true], 10);
        let total: usize = curve.iter().map(|c| c.count).sum();
        assert_eq!(total, 2);
        assert_eq!(curve.first().unwrap().predicted, 0.0);
        assert_eq!(curve.last().unwrap().predicted, 1.0);
    }
}
