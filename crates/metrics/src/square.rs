//! Square-loss metrics SqV, SqC, SqA (Section 5.1.1).
//!
//! * **SqV** — average square loss between `p(V_d = v | X)` and the ground
//!   truth indicator `I(V*_d = v)`, over evaluated `(d, v)` pairs.
//! * **SqC** — average square loss between `p(C_wdv = 1 | X)` and
//!   `I(C*_wdv = 1)`, over triple groups.
//! * **SqA** — average square loss between `Â_w` and the true accuracy
//!   `A*_w`, over sources.
//!
//! All three reduce to the same primitive: mean squared difference between
//! a prediction vector and a target vector, optionally restricted to the
//! entries where ground truth is known (real data has only a partial gold
//! standard).

/// Mean squared error between predictions and real-valued targets.
///
/// Returns `None` when the slices are empty (no loss is defined).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn square_loss(pred: &[f64], truth: &[f64]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return None;
    }
    let sum: f64 = pred.iter().zip(truth).map(|(p, t)| (p - t) * (p - t)).sum();
    Some(sum / pred.len() as f64)
}

/// Mean squared error against binary ground truth.
pub fn square_loss_binary(pred: &[f64], truth: &[bool]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    if pred.is_empty() {
        return None;
    }
    let sum: f64 = pred
        .iter()
        .zip(truth)
        .map(|(p, &t)| {
            let t = if t { 1.0 } else { 0.0 };
            (p - t) * (p - t)
        })
        .sum();
    Some(sum / pred.len() as f64)
}

/// Mean squared error against a *partial* gold standard: entries with
/// `None` truth are skipped (the LCWA gold standard labels only ~26% of
/// triples — Section 5.3.1).
pub fn square_loss_partial(pred: &[f64], truth: &[Option<bool>]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len(), "prediction/truth length mismatch");
    let mut sum = 0.0;
    let mut n = 0usize;
    for (p, t) in pred.iter().zip(truth) {
        if let Some(t) = t {
            let t = if *t { 1.0 } else { 0.0 };
            sum += (p - t) * (p - t);
            n += 1;
        }
    }
    (n > 0).then(|| sum / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_have_zero_loss() {
        assert_eq!(square_loss(&[1.0, 0.0], &[1.0, 0.0]), Some(0.0));
        assert_eq!(square_loss_binary(&[1.0, 0.0], &[true, false]), Some(0.0));
    }

    #[test]
    fn known_values() {
        // (0.5-1)² = .25, (0.5-0)² = .25 → mean .25
        assert_eq!(square_loss_binary(&[0.5, 0.5], &[true, false]), Some(0.25));
        let l = square_loss(&[0.9, 0.2], &[1.0, 0.0]).unwrap();
        assert!((l - (0.01 + 0.04) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_none() {
        assert_eq!(square_loss(&[], &[]), None);
        assert_eq!(square_loss_partial(&[0.5], &[None]), None);
    }

    #[test]
    fn partial_gold_skips_unknowns() {
        let l = square_loss_partial(&[1.0, 0.3, 0.0], &[Some(true), None, Some(false)]).unwrap();
        assert_eq!(l, 0.0);
        let l2 = square_loss_partial(&[0.5, 0.9, 0.5], &[Some(true), None, None]).unwrap();
        assert!((l2 - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = square_loss(&[0.1], &[0.1, 0.2]);
    }
}
