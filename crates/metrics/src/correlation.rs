//! Correlation statistics for the KBT-vs-PageRank comparison (Figure 10).
//!
//! The paper concludes the two signals are "almost orthogonal"; we
//! quantify that with Pearson and Spearman correlation over the sampled
//! websites.

/// Pearson product-moment correlation. `None` if fewer than two points or
/// either variable is constant.
pub fn pearson(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let n = x.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = x.iter().sum::<f64>() / nf;
    let my = y.iter().sum::<f64>() / nf;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for i in 0..n {
        let dx = x[i] - mx;
        let dy = y[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation (Pearson over average ranks; ties averaged).
pub fn spearman(x: &[f64], y: &[f64]) -> Option<f64> {
    assert_eq!(x.len(), y.len());
    let rx = ranks(x);
    let ry = ranks(y);
    pearson(&rx, &ry)
}

fn ranks(v: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..v.len()).collect();
    order.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("NaN value"));
    let mut r = vec![0.0; v.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && v[order[j + 1]] == v[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            r[k] = avg;
        }
        i = j + 1;
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_anticorrelation() {
        let x = [1.0, 2.0, 3.0];
        let y = [3.0, 2.0, 1.0];
        assert!((pearson(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_variable_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), None);
        assert_eq!(pearson(&[1.0], &[1.0]), None);
    }

    #[test]
    fn spearman_is_rank_invariant_to_monotone_transform() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [1.0, 8.0, 27.0, 64.0]; // cubic, monotone
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ties_get_average_ranks() {
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn independent_signals_have_small_correlation() {
        let mut state = 123456789u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let x: Vec<f64> = (0..5000).map(|_| rng()).collect();
        let y: Vec<f64> = (0..5000).map(|_| rng()).collect();
        assert!(pearson(&x, &y).unwrap().abs() < 0.05);
    }
}
