//! Weighted deviation (WDev) — the calibration metric of Section 5.1.1.
//!
//! Triples are bucketed by predicted probability using the paper's
//! non-uniform bucket scheme — fine granularity near 0 and 1 where most
//! triples fall:
//!
//! ```text
//! [0, .01), …, [.04, .05),   (5 buckets of width .01)
//! [.05, .1), …, [.9, .95),   (18 buckets of width .05)
//! [.95, .96), …, [.99, 1),   (4 buckets of width .01)
//! [1, 1]                     (exact-one bucket)
//! ```
//!
//! For each bucket the empirical accuracy of its triples (per the gold
//! standard) is "the real probability"; WDev is the square loss between
//! predicted and real probability, weighted by bucket population.

/// The paper's bucket edges (lower bounds; the last bucket is `[1, 1]`).
pub fn paper_bucket_edges() -> Vec<f64> {
    let mut edges = Vec::with_capacity(28);
    for i in 0..5 {
        edges.push(i as f64 * 0.01); // 0, .01, .02, .03, .04
    }
    for i in 1..19 {
        edges.push(i as f64 * 0.05); // .05 … .90
    }
    for i in 0..5 {
        edges.push(0.95 + i as f64 * 0.01); // .95 … .99
    }
    edges.push(1.0);
    edges
}

/// One calibration bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound of the predicted-probability range.
    pub lo: f64,
    /// Exclusive upper bound (inclusive for the final `[1,1]` bucket).
    pub hi: f64,
    /// Number of labeled predictions in the bucket.
    pub count: usize,
    /// Mean predicted probability.
    pub mean_predicted: f64,
    /// Empirical accuracy (fraction of true labels).
    pub accuracy: f64,
}

/// Bucketize labeled predictions with the paper's edges.
pub fn bucketize(pred: &[f64], truth: &[bool]) -> Vec<Bucket> {
    assert_eq!(pred.len(), truth.len());
    let edges = paper_bucket_edges();
    let k = edges.len(); // buckets: edges[i] .. edges[i+1], last is [1,1]
    let mut count = vec![0usize; k];
    let mut psum = vec![0.0f64; k];
    let mut tsum = vec![0usize; k];
    for (&p, &t) in pred.iter().zip(truth) {
        let p = p.clamp(0.0, 1.0);
        // Find bucket: last edge ≤ p (the [1,1] bucket catches p == 1).
        let mut b = match edges.binary_search_by(|e| e.partial_cmp(&p).unwrap()) {
            Ok(i) => i,
            Err(i) => i.saturating_sub(1),
        };
        if b >= k {
            b = k - 1;
        }
        count[b] += 1;
        psum[b] += p;
        tsum[b] += t as usize;
    }
    (0..k)
        .map(|i| {
            let hi = if i + 1 < k { edges[i + 1] } else { 1.0 };
            Bucket {
                lo: edges[i],
                hi,
                count: count[i],
                mean_predicted: if count[i] > 0 {
                    psum[i] / count[i] as f64
                } else {
                    0.0
                },
                accuracy: if count[i] > 0 {
                    tsum[i] as f64 / count[i] as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// WDev: population-weighted square loss between the mean predicted
/// probability and the empirical accuracy of each bucket.
/// `None` when no labeled prediction exists.
pub fn wdev(pred: &[f64], truth: &[bool]) -> Option<f64> {
    let buckets = bucketize(pred, truth);
    let total: usize = buckets.iter().map(|b| b.count).sum();
    if total == 0 {
        return None;
    }
    let sum: f64 = buckets
        .iter()
        .filter(|b| b.count > 0)
        .map(|b| {
            let d = b.mean_predicted - b.accuracy;
            b.count as f64 * d * d
        })
        .sum();
    Some(sum / total as f64)
}

/// WDev against a partial gold standard (unlabeled entries skipped).
pub fn wdev_partial(pred: &[f64], truth: &[Option<bool>]) -> Option<f64> {
    assert_eq!(pred.len(), truth.len());
    let mut p = Vec::new();
    let mut t = Vec::new();
    for (x, l) in pred.iter().zip(truth) {
        if let Some(l) = l {
            p.push(*x);
            t.push(*l);
        }
    }
    wdev(&p, &t)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_match_the_papers_scheme() {
        let e = paper_bucket_edges();
        assert_eq!(e[0], 0.0);
        assert_eq!(e[4], 0.04);
        assert!((e[5] - 0.05).abs() < 1e-12);
        assert!((e[22] - 0.90).abs() < 1e-12);
        assert!((e[23] - 0.95).abs() < 1e-12);
        assert!((e[27] - 0.99).abs() < 1e-12);
        assert_eq!(*e.last().unwrap(), 1.0);
        assert_eq!(e.len(), 29);
        for w in e.windows(2) {
            assert!(w[0] < w[1], "edges must increase: {w:?}");
        }
    }

    #[test]
    fn perfectly_calibrated_predictions_have_zero_wdev() {
        // All predictions 1.0 and all true: bucket [1,1] mean=1, acc=1.
        let pred = vec![1.0; 100];
        let truth = vec![true; 100];
        assert_eq!(wdev(&pred, &truth), Some(0.0));
    }

    #[test]
    fn miscalibration_is_detected() {
        // Predicting 0.99 for triples that are only 50% true.
        let pred = vec![0.995; 100];
        let truth: Vec<bool> = (0..100).map(|i| i % 2 == 0).collect();
        let w = wdev(&pred, &truth).unwrap();
        assert!((w - (0.995 - 0.5) * (0.995 - 0.5)).abs() < 1e-9);
    }

    #[test]
    fn one_bucket_cannot_hide_another() {
        // Half the mass perfectly calibrated at 1.0, half badly at 0.0.
        let mut pred = vec![1.0; 50];
        pred.extend(vec![0.001; 50]);
        let mut truth = vec![true; 50];
        truth.extend(vec![true; 50]); // low predictions are actually true
        let w = wdev(&pred, &truth).unwrap();
        assert!(w > 0.4, "wdev = {w}");
    }

    #[test]
    fn exact_one_goes_to_the_final_bucket() {
        let buckets = bucketize(&[1.0, 0.999], &[true, true]);
        let last = buckets.last().unwrap();
        assert_eq!(last.count, 1);
        // 0.999 lands in [0.99, 1).
        let prev = &buckets[buckets.len() - 2];
        assert_eq!(prev.count, 1);
    }

    #[test]
    fn partial_labels_are_skipped() {
        let w = wdev_partial(&[1.0, 0.5], &[Some(true), None]).unwrap();
        assert_eq!(w, 0.0);
        assert_eq!(wdev_partial(&[0.5], &[None]), None);
    }
}
