//! Histograms for the distribution plots (Figures 5, 6, 7).
//!
//! Figure 5 uses the paper's mixed linear/log bucket scheme for counts per
//! URL or extraction pattern: `1, 2, …, 10, 11–100, 100–1K, 1K–10K,
//! 10K–100K, 100K–1M, >1M`. Figures 6 and 7 use uniform probability bins
//! of width 0.05.

/// A labeled histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Human-readable bucket labels.
    pub labels: Vec<String>,
    /// Count per bucket.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Total population.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of the population in each bucket.
    pub fn fractions(&self) -> Vec<f64> {
        let t = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / t).collect()
    }

    /// Index of the most populated bucket.
    pub fn peak(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// The Figure 5 bucket scheme over positive counts.
pub fn count_histogram(counts: impl IntoIterator<Item = u64>) -> Histogram {
    let labels: Vec<String> = (1..=10)
        .map(|i| i.to_string())
        .chain(
            ["11-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", ">1M"]
                .iter()
                .map(|s| s.to_string()),
        )
        .collect();
    let mut buckets = vec![0u64; labels.len()];
    for c in counts {
        let b = match c {
            0 => continue, // zero-size entities are not plotted
            1..=10 => (c - 1) as usize,
            11..=100 => 10,
            101..=1_000 => 11,
            1_001..=10_000 => 12,
            10_001..=100_000 => 13,
            100_001..=1_000_000 => 14,
            _ => 15,
        };
        buckets[b] += 1;
    }
    Histogram {
        labels,
        counts: buckets,
    }
}

/// Uniform-bin histogram over `[0, 1]` values (Figures 6 and 7 use 20
/// bins of width 0.05).
pub fn probability_histogram(values: impl IntoIterator<Item = f64>, bins: usize) -> Histogram {
    assert!(bins > 0);
    let mut counts = vec![0u64; bins];
    for v in values {
        let v = v.clamp(0.0, 1.0);
        let b = ((v * bins as f64) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let labels = (0..bins)
        .map(|b| format!("{:.2}", b as f64 / bins as f64))
        .collect();
    Histogram { labels, counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_buckets_match_figure5_scheme() {
        let h = count_histogram([1, 1, 2, 10, 11, 100, 101, 55_000, 2_000_000]);
        assert_eq!(h.labels.len(), 16);
        assert_eq!(h.counts[0], 2); // two 1s
        assert_eq!(h.counts[1], 1); // one 2
        assert_eq!(h.counts[9], 1); // one 10
        assert_eq!(h.counts[10], 2); // 11 and 100
        assert_eq!(h.counts[11], 1); // 101
        assert_eq!(h.counts[13], 1); // 55 000
        assert_eq!(h.counts[15], 1); // 2 000 000
        assert_eq!(h.total(), 9);
    }

    #[test]
    fn zero_counts_are_skipped() {
        let h = count_histogram([0, 0, 5]);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn probability_histogram_bins_uniformly() {
        let h = probability_histogram([0.0, 0.04, 0.05, 0.81, 1.0], 20);
        assert_eq!(h.counts[0], 2); // 0.0 and 0.04
        assert_eq!(h.counts[1], 1); // 0.05
        assert_eq!(h.counts[16], 1); // 0.81
        assert_eq!(h.counts[19], 1); // 1.0 clamps into last bin
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn peak_and_fractions() {
        let h = probability_histogram([0.8, 0.82, 0.83, 0.1], 20);
        assert_eq!(h.peak(), 16);
        let f = h.fractions();
        assert!((f[16] - 0.75).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
