//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the proptest API its tests use: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`any`], and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Semantics versus upstream: cases are generated from a deterministic
//! per-test RNG (seeded from the test name), there is **no shrinking**, and
//! `prop_assume!` rejects the case without retrying a replacement. The
//! number of cases defaults to 64 and can be overridden with the
//! `PROPTEST_CASES` environment variable.

#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic per-test RNG (xoshiro256**, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for `case` of the test named `name` (stable across runs).
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Number of cases each `proptest!` test runs (`PROPTEST_CASES`, default 64).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64)
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        Self::Reject(msg.into())
    }
}

/// A generator of values for one `proptest!` argument.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        self.start() + u * (self.end() - self.start())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and a size range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }
}

/// The subset of the proptest prelude this workspace uses.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
    pub use crate::{Arbitrary, TestCaseError};
}

/// Define property tests. Each `arg in strategy` pair is sampled per case;
/// the body runs for [`cases()`] deterministic cases (no shrinking).
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$attr])*
        fn $name() {
            let total = $crate::cases();
            let mut rejected = 0u64;
            for case in 0..total {
                let mut prop_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match outcome {
                    Ok(()) => {}
                    Err($crate::TestCaseError::Reject(_)) => rejected += 1,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {case}/{total} failed: {msg}")
                    }
                }
            }
            assert!(
                rejected < total,
                "proptest: every one of {total} cases was rejected by prop_assume!"
            );
        }
    )+};
}

/// Assert inside a `proptest!` body; failure fails the whole test with the
/// generated inputs' case number in the message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategy_produce_in_bounds_values() {
        let mut rng = crate::TestRng::for_case("self_test", 0);
        let s = prop::collection::vec(3u32..9, 2..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (3..9).contains(x)));
        }
    }

    proptest! {
        #[test]
        fn macro_machinery_works(x in 0u32..10, ys in prop::collection::vec(any::<bool>(), 1..4)) {
            prop_assume!(x != 3);
            prop_assert!(x < 10);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }

    proptest! {
        #[test]
        #[should_panic]
        fn failing_assert_panics(x in 0u32..10) {
            prop_assert!(x > 100, "x = {x} is never > 100");
        }
    }
}
