//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of the criterion API its benches use: [`Criterion`],
//! benchmark groups, [`BenchmarkId`], [`Bencher::iter`], [`black_box`],
//! and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up, then
//! timed in batches until a wall-clock budget is spent, and the mean
//! nanoseconds per iteration is printed. No statistics, plots, or baseline
//! comparisons — enough to compare orders of magnitude between runs.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-benchmark measurement budget.
const BUDGET: Duration = Duration::from_millis(300);
/// Warm-up calls before measuring.
const WARMUP_ITERS: u32 = 2;

/// Collects timing from one benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, called in a loop until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < BUDGET {
            black_box(f());
            iters += 1;
        }
        self.iters = iters.max(1);
        self.elapsed = start.elapsed();
    }

    fn report(&self, id: &str) {
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        println!(
            "bench {id:48} {per_iter:>14.0} ns/iter  ({} iters)",
            self.iters
        );
    }
}

/// Identifier of a parameterized benchmark (`name/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A benchmark id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Run one parameterized benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id));
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(id);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// Bundle benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut b = Bencher::default();
        b.iter(|| black_box(21u64 * 2));
        assert!(b.iters >= 1);
        assert!(b.elapsed >= BUDGET);
    }

    #[test]
    fn group_and_id_render() {
        let id = BenchmarkId::new("model", 5);
        assert_eq!(id.id, "model/5");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }
}
