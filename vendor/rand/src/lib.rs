//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the small slice of the `rand` 0.8 API the repository uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] extension methods
//! `gen`, `gen_range`, and `gen_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic,
//! fast, and of ample quality for the synthetic-corpus generators and tests
//! in this repository. It is **not** the same stream as upstream `StdRng`
//! (ChaCha12), so seeds produce different corpora than a build against
//! crates.io would; everything in-repo only relies on determinism, not on a
//! particular stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word from the stream.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value of the range from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty integer range");
                let span = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                (lo + (rng.next_u64() % span.max(1)) as i64) as $t
            }
        }
    )+};
}

signed_sample_range!(i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u = f64::sample(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                // Closed interval: scale by the next-representable step so
                // `hi` is reachable.
                let u = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + u * (hi - lo)
            }
        }
    )+};
}

float_sample_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as upstream does for small seeds.
            let mut sm = state;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>(), b.gen::<f64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<f64>(), c.gen::<f64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&y));
            let z: f64 = rng.gen_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&z));
            let u: usize = rng.gen_range(0..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn uniformity_sanity() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
        let heads = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let frac = heads as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "p(heads) = {frac}");
    }
}
