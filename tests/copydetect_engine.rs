//! Acceptance tests for the sharded copy-detection subsystem and the
//! copy-aware fusion loop:
//!
//! 1. differential proof that sharded detection is **bit-for-bit
//!    identical** to the serial reference (`ExecMode::Flat`) at 1, 2,
//!    and 8 threads, on a seeded random corpus and on a planted-copier
//!    corpus,
//! 2. the planted verbatim copier pair ranks first in `CopyEvidence`
//!    order across ≥32 proptest seeds, and
//! 3. copy-aware fusion (`ModelConfig::copy_detection`) strictly
//!    improves truth accuracy over copy-blind fusion on the same
//!    corpus, per seed.

use kbt::core::{
    detect_copies_from_accuracy, CopyDetectConfig, ExecMode, FusionModel, MultiLayerModel,
};
use kbt::datamodel::{
    CubeBuilder, ExtractorId, ItemId, Observation, ObservationCube, SourceId, ValueId,
};
use kbt::{FusionReport, Model, ModelConfig, QualityInit, TrustPipeline};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DOMAIN: u32 = 11;
const ITEMS: u32 = 200;
const HONEST: u32 = 5;
const HONEST_ACC: f64 = 0.6;

/// The copier id: one past the honest sources; it copies the last honest
/// source (the victim) verbatim, mistakes included.
const COPIER: u32 = HONEST;
const VICTIM: u32 = HONEST - 1;

/// A planted-copier corpus: `HONEST` independent sources of accuracy
/// `HONEST_ACC`, plus a verbatim copier of the last one. Returns the cube
/// and the planted truth per item.
fn planted_copier_corpus(seed: u64) -> (ObservationCube, Vec<u32>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let truth: Vec<u32> = (0..ITEMS).map(|_| rng.gen_range(0..DOMAIN)).collect();
    let mut provided: Vec<Vec<u32>> = Vec::new();
    for _ in 0..HONEST {
        provided.push(
            (0..ITEMS)
                .map(|d| {
                    if rng.gen::<f64>() < HONEST_ACC {
                        truth[d as usize]
                    } else {
                        // A wrong value, uniform over the other DOMAIN-1.
                        let mut v = rng.gen_range(0..DOMAIN - 1);
                        if v >= truth[d as usize] {
                            v += 1;
                        }
                        v
                    }
                })
                .collect(),
        );
    }
    provided.push(provided[VICTIM as usize].clone()); // the copier
    let mut b = CubeBuilder::new();
    for (w, vals) in provided.iter().enumerate() {
        for (d, &v) in vals.iter().enumerate() {
            for e in 0..2u32 {
                b.push(Observation::certain(
                    ExtractorId::new(e),
                    SourceId::new(w as u32),
                    ItemId::new(d as u32),
                    ValueId::new(v),
                ));
            }
        }
    }
    (b.build(), truth)
}

/// A seeded random corpus with no planted structure.
fn seeded_random_corpus(seed: u64) -> ObservationCube {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = CubeBuilder::new();
    for _ in 0..1_500 {
        b.push(Observation {
            extractor: ExtractorId::new(rng.gen_range(0..4)),
            source: SourceId::new(rng.gen_range(0..20)),
            item: ItemId::new(rng.gen_range(0..60)),
            value: ValueId::new(rng.gen_range(0..8)),
            confidence: rng.gen::<f64>(),
        });
    }
    b.build()
}

fn assert_detection_identical_at_1_2_8_threads(cube: &ObservationCube, acc: &[f64], ctx: &str) {
    let flat = detect_copies_from_accuracy(
        cube,
        acc,
        &CopyDetectConfig {
            exec_mode: ExecMode::Flat,
            ..CopyDetectConfig::default()
        },
    );
    for threads in [1usize, 2, 8] {
        let sharded = kbt::flume::with_threads(Some(threads), || {
            detect_copies_from_accuracy(cube, acc, &CopyDetectConfig::default())
        });
        assert_eq!(flat, sharded, "{ctx}: sharded != flat at {threads} threads");
    }
}

/// Differential test: the sharded detector is bit-for-bit the serial
/// reference at 1, 2, and 8 threads, on both corpus families and under
/// several overlap thresholds and accuracy vectors.
#[test]
fn sharded_detection_is_bit_identical_to_serial_reference() {
    for seed in [1u64, 42, 20150831] {
        let (cube, _) = planted_copier_corpus(seed);
        // EM-estimated accuracies (the production feed)…
        let report = MultiLayerModel::new(ModelConfig::default()).fit(&cube, &QualityInit::Default);
        assert_detection_identical_at_1_2_8_threads(
            &cube,
            report.source_trust(),
            &format!("planted copier, seed {seed}"),
        );

        let cube = seeded_random_corpus(seed);
        // …and an arbitrary synthetic trust vector.
        let acc: Vec<f64> = (0..cube.num_sources())
            .map(|w| 0.05 + 0.9 * (w as f64 / cube.num_sources() as f64))
            .collect();
        assert_detection_identical_at_1_2_8_threads(
            &cube,
            &acc,
            &format!("random corpus, seed {seed}"),
        );
        for min_overlap in [1usize, 10, 50] {
            let mk = |exec_mode| CopyDetectConfig {
                exec_mode,
                min_overlap,
                ..CopyDetectConfig::default()
            };
            let flat = detect_copies_from_accuracy(&cube, &acc, &mk(ExecMode::Flat));
            let sharded = detect_copies_from_accuracy(&cube, &acc, &mk(ExecMode::Sharded));
            assert_eq!(flat, sharded, "min_overlap {min_overlap}, seed {seed}");
        }
    }
}

/// Fraction of items whose MAP posterior value equals the planted truth.
fn truth_accuracy(report: &FusionReport, truth: &[u32]) -> f64 {
    let correct = truth
        .iter()
        .enumerate()
        .filter(|&(d, &tv)| {
            report
                .posteriors()
                .map_value(ItemId::new(d as u32))
                .is_some_and(|(v, _)| v == ValueId::new(tv))
        })
        .count();
    correct as f64 / truth.len() as f64
}

fn fusion_cfg() -> ModelConfig {
    ModelConfig {
        max_iterations: 20,
        convergence_eps: 1e-5,
        ..ModelConfig::default()
    }
}

/// The headline acceptance test: copy-aware fusion strictly beats
/// copy-blind fusion on the planted-copier scenario, the copier pair
/// ranks first in the attached evidence, and only the copier is
/// discounted.
#[test]
fn copy_aware_fusion_beats_copy_blind_on_planted_copier() {
    let (cube, truth) = planted_copier_corpus(20150831);

    let blind = MultiLayerModel::new(fusion_cfg()).fit(&cube, &QualityInit::Default);
    let aware_cfg = ModelConfig {
        copy_detection: Some(CopyDetectConfig {
            discount: true,
            ..CopyDetectConfig::default()
        }),
        ..fusion_cfg()
    };
    let aware = MultiLayerModel::new(aware_cfg).fit(&cube, &QualityInit::Default);

    let acc_blind = truth_accuracy(&blind, &truth);
    let acc_aware = truth_accuracy(&aware, &truth);
    assert!(
        acc_aware > acc_blind,
        "copy-aware fusion must strictly beat copy-blind: {acc_aware} vs {acc_blind}"
    );

    // The attached evidence ranks the planted pair first.
    let ev = aware.copy_evidence.as_ref().expect("evidence attached");
    assert_eq!(
        (ev[0].a, ev[0].b),
        (SourceId::new(VICTIM), SourceId::new(COPIER)),
        "planted pair must rank first: {:?}",
        ev[0]
    );

    // Only the copier loses independence; the honest sources keep theirs.
    let indep = aware
        .as_multi_layer()
        .unwrap()
        .source_independence
        .as_ref()
        .expect("independence factors recorded");
    assert!(
        indep[COPIER as usize] < 0.5,
        "copier must be discounted: {indep:?}"
    );
    for w in 0..HONEST as usize {
        assert!(
            indep[w] > 0.9,
            "honest source {w} must stay independent: {indep:?}"
        );
    }

    // The copier's doubled votes no longer launder the victim's mistakes,
    // so the victim's trust drops relative to the copy-blind estimate.
    assert!(
        aware.kbt(SourceId::new(VICTIM)) < blind.kbt(SourceId::new(VICTIM)) + 1e-12,
        "victim trust must not rise under discounting"
    );
}

/// The same guarantee through the public pipeline switch
/// (`CopyDetectConfig::discount`), plus backward compatibility of the
/// post-hoc diagnostic path.
#[test]
fn pipeline_discount_switch_feeds_evidence_back_into_fusion() {
    let (cube, truth) = planted_copier_corpus(7);

    let post_hoc = TrustPipeline::new()
        .cube(cube.clone())
        .model(Model::MultiLayer(fusion_cfg()))
        .copy_detection(CopyDetectConfig::default())
        .run();
    let aware = TrustPipeline::new()
        .cube(cube.clone())
        .model(Model::MultiLayer(fusion_cfg()))
        .copy_detection(CopyDetectConfig {
            discount: true,
            ..CopyDetectConfig::default()
        })
        .run();

    // Post-hoc: trust identical to a copy-blind run; evidence attached.
    let blind = MultiLayerModel::new(fusion_cfg()).fit(&cube, &QualityInit::Default);
    assert_eq!(post_hoc.source_trust(), blind.source_trust());
    assert!(post_hoc.copy_evidence.is_some());

    // Discounting: strictly better truth accuracy, evidence attached.
    assert!(truth_accuracy(&aware, &truth) > truth_accuracy(&post_hoc, &truth));
    let ev = aware.copy_evidence.as_ref().unwrap();
    assert_eq!(
        (ev[0].a, ev[0].b),
        (SourceId::new(VICTIM), SourceId::new(COPIER))
    );
}

/// Copy-aware fusion itself (not just detection) is bit-for-bit
/// identical between the flat and sharded engines at 1, 2, and 8
/// threads — this pins the two hand-mirrored CopyDiscount multiplies in
/// the flat and sharded value E-steps to each other.
#[test]
fn copy_aware_fusion_is_bit_identical_across_engines() {
    let (cube, _) = planted_copier_corpus(3);
    let mk = |exec_mode, threads| ModelConfig {
        exec_mode,
        threads: Some(threads),
        copy_detection: Some(CopyDetectConfig {
            discount: true,
            exec_mode,
            ..CopyDetectConfig::default()
        }),
        ..fusion_cfg()
    };
    let flat = MultiLayerModel::new(mk(ExecMode::Flat, 1)).fit(&cube, &QualityInit::Default);
    let flat_indep = flat.as_multi_layer().unwrap().source_independence.clone();
    assert!(
        flat_indep
            .as_ref()
            .is_some_and(|i| i.iter().any(|&s| s < 1.0)),
        "the discount loop must engage on the planted corpus"
    );
    for threads in [1usize, 2, 8] {
        let sharded =
            MultiLayerModel::new(mk(ExecMode::Sharded, threads)).fit(&cube, &QualityInit::Default);
        assert_eq!(
            flat.source_trust(),
            sharded.source_trust(),
            "trust at {threads} threads"
        );
        assert_eq!(
            flat.truth_of_group(),
            sharded.truth_of_group(),
            "truth at {threads} threads"
        );
        assert_eq!(
            flat.correctness(),
            sharded.correctness(),
            "correctness at {threads} threads"
        );
        assert_eq!(
            flat.copy_evidence, sharded.copy_evidence,
            "evidence at {threads} threads"
        );
        assert_eq!(
            flat_indep,
            sharded.as_multi_layer().unwrap().source_independence,
            "independence at {threads} threads"
        );
        assert_eq!(flat.iterations(), sharded.iterations());
    }
}

/// Warm session restarts re-use prior copy evidence: after a copy-aware
/// cold run, the next warm run starts from the recorded independence
/// factors, so its very first EM fit is already copy-aware.
#[test]
fn session_warm_restart_reuses_prior_copy_evidence() {
    use kbt::FusionSession;

    let (cube, truth) = planted_copier_corpus(11);
    let aware_cfg = ModelConfig {
        copy_detection: Some(CopyDetectConfig {
            discount: true,
            ..CopyDetectConfig::default()
        }),
        ..fusion_cfg()
    };
    let mut session = FusionSession::new(cube.clone(), Model::MultiLayer(aware_cfg));
    assert!(session.independence().is_none(), "no evidence before a run");
    let cold = session.run();
    let indep = session.independence().expect("copy-aware run records I(w)");
    assert!(
        indep[COPIER as usize] < 0.5,
        "cold run must discount the copier: {indep:?}"
    );

    // A small honest delta, then a warm re-run: the copier stays
    // discounted and truth accuracy stays at copy-aware levels.
    let delta: Vec<Observation> = (0..10u32)
        .map(|d| {
            Observation::certain(
                ExtractorId::new(0),
                SourceId::new(0),
                ItemId::new(ITEMS + d),
                ValueId::new(0),
            )
        })
        .collect();
    let warm = session.update(&delta).run();
    assert!(warm.converged());
    let indep = session.independence().unwrap();
    assert!(
        indep[COPIER as usize] < 0.5,
        "warm run must keep the copier discounted: {indep:?}"
    );
    assert!(
        truth_accuracy(&warm, &truth) >= truth_accuracy(&cold, &truth) - 1e-9,
        "warm copy-aware accuracy must not regress"
    );
}

proptest! {
    /// Across ≥32 seeds (the harness runs 64 cases by default): the
    /// planted verbatim copier pair always ranks first in evidence
    /// order, and copy-aware fusion strictly improves truth accuracy
    /// over copy-blind fusion on that corpus.
    #[test]
    fn planted_copier_always_ranks_first_and_discounting_always_helps(seed in 0u64..1_000_000) {
        let (cube, truth) = planted_copier_corpus(seed);

        let blind = MultiLayerModel::new(fusion_cfg()).fit(&cube, &QualityInit::Default);
        let evidence = detect_copies_from_accuracy(
            &cube,
            blind.source_trust(),
            &CopyDetectConfig::default(),
        );
        prop_assert!(!evidence.is_empty());
        prop_assert!(
            (evidence[0].a, evidence[0].b) == (SourceId::new(VICTIM), SourceId::new(COPIER)),
            "seed {}: copier pair must rank first, got {:?}", seed, evidence[0]
        );

        let aware_cfg = ModelConfig {
            copy_detection: Some(CopyDetectConfig {
            discount: true,
            ..CopyDetectConfig::default()
        }),
            ..fusion_cfg()
        };
        let aware = MultiLayerModel::new(aware_cfg).fit(&cube, &QualityInit::Default);
        let (acc_aware, acc_blind) = (truth_accuracy(&aware, &truth), truth_accuracy(&blind, &truth));
        prop_assert!(
            acc_aware > acc_blind,
            "seed {}: copy-aware {} must strictly beat copy-blind {}",
            seed, acc_aware, acc_blind
        );
    }
}
