//! End-to-end integration tests spanning the whole workspace: synthetic
//! generation → inference → evaluation, exercised through the public
//! facade crate.

use kbt::core::{ModelConfig, MultiLayerModel, QualityInit, SingleLayerModel};
use kbt::datamodel::SourceId;
use kbt::metrics::square_loss_binary;
use kbt::synth::paper::{generate, SyntheticConfig};

/// The headline claim (Figure 3): on the paper's synthetic data the
/// multi-layer model recovers source accuracies far better than the
/// single-layer baseline once extraction noise is present.
#[test]
fn multilayer_recovers_source_accuracy_better_than_singlelayer() {
    let mut multi_sqa = 0.0;
    let mut single_sqa = 0.0;
    let runs = 3;
    for rep in 0..runs {
        let data = generate(&SyntheticConfig {
            seed: 500 + rep,
            ..SyntheticConfig::default()
        });
        let m = MultiLayerModel::new(ModelConfig::default())
            .run(&data.cube, &QualityInit::Default);
        let s = SingleLayerModel::new(ModelConfig::single_layer_default())
            .run(&data.cube, &QualityInit::Default);
        for w in 0..data.cube.num_sources() {
            let truth = data.truth.source_accuracy[w];
            multi_sqa += (m.kbt(SourceId::new(w as u32)) - truth).powi(2);
            single_sqa += (s.source_accuracy[w] - truth).powi(2);
        }
    }
    assert!(
        multi_sqa < single_sqa,
        "multi SqA {multi_sqa:.4} must beat single SqA {single_sqa:.4}"
    );
}

/// Planted extractor precision must be recovered within a loose tolerance:
/// P = 0.8³ ≈ 0.51 per the synthetic model.
#[test]
fn extractor_precision_is_recovered() {
    let data = generate(&SyntheticConfig {
        triples_per_source: 200,
        seed: 901,
        ..SyntheticConfig::default()
    });
    let r = MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    for e in 0..5 {
        assert!(
            (r.params.precision[e] - 0.512).abs() < 0.2,
            "P[{e}] = {} far from P³ = 0.512",
            r.params.precision[e]
        );
    }
}

/// Extraction-correctness estimates must separate truly provided triples
/// from extraction artifacts.
#[test]
fn correctness_separates_provided_from_hallucinated() {
    let data = generate(&SyntheticConfig {
        seed: 77,
        ..SyntheticConfig::default()
    });
    let r = MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    let (mut sp, mut np, mut su, mut nu) = (0.0, 0usize, 0.0, 0usize);
    for (g, &c) in r.correctness.iter().enumerate() {
        if data.truth.group_provided[g] {
            sp += c;
            np += 1;
        } else {
            su += c;
            nu += 1;
        }
    }
    let mean_provided = sp / np as f64;
    let mean_hallucinated = su / nu as f64;
    assert!(
        mean_provided > mean_hallucinated + 0.2,
        "no separation: provided {mean_provided:.3} vs hallucinated {mean_hallucinated:.3}"
    );
}

/// Same seed → bit-identical results; different seed → different corpus.
#[test]
fn pipeline_is_deterministic() {
    let cfg = SyntheticConfig {
        seed: 31337,
        ..SyntheticConfig::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    let ra = MultiLayerModel::new(ModelConfig::default()).run(&a.cube, &QualityInit::Default);
    let rb = MultiLayerModel::new(ModelConfig::default()).run(&b.cube, &QualityInit::Default);
    assert_eq!(ra.params.source_accuracy, rb.params.source_accuracy);
    assert_eq!(ra.correctness, rb.correctness);
    let c = generate(&SyntheticConfig {
        seed: 31338,
        ..SyntheticConfig::default()
    });
    assert_ne!(a.cube.num_cells(), 0);
    assert!(c.cube.num_cells() != a.cube.num_cells() || {
        let rc =
            MultiLayerModel::new(ModelConfig::default()).run(&c.cube, &QualityInit::Default);
        rc.params.source_accuracy != ra.params.source_accuracy
    });
}

/// Parallel execution must not change results: 1 worker ≡ N workers.
#[test]
fn parallel_equals_serial() {
    let data = generate(&SyntheticConfig {
        seed: 4242,
        ..SyntheticConfig::default()
    });
    kbt::flume::set_num_threads(1);
    let serial = MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    kbt::flume::set_num_threads(0);
    let parallel =
        MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    assert_eq!(serial.params.source_accuracy, parallel.params.source_accuracy);
    assert_eq!(serial.params.precision, parallel.params.precision);
    assert_eq!(serial.correctness, parallel.correctness);
    assert_eq!(serial.truth_of_group, parallel.truth_of_group);
}

/// SqV on the default synthetic setup should be in the ballpark the paper
/// reports for five extractors (Figure 3: ≈ 0.03–0.1).
#[test]
fn sqv_is_paper_magnitude() {
    let data = generate(&SyntheticConfig {
        seed: 11,
        ..SyntheticConfig::default()
    });
    let r = MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    let eval = data.value_eval_set();
    let pred: Vec<f64> = eval
        .iter()
        .map(|(d, v, _)| r.posteriors.prob(*d, *v))
        .collect();
    let truth: Vec<bool> = eval.iter().map(|(_, _, t)| *t).collect();
    let sqv = square_loss_binary(&pred, &truth).unwrap();
    assert!(sqv < 0.15, "SqV = {sqv} too high");
}
