//! End-to-end integration tests spanning the whole workspace: synthetic
//! generation → inference → evaluation, exercised through the public
//! facade crate's `TrustPipeline`.

use kbt::core::{ModelConfig, QualityInit};
use kbt::datamodel::SourceId;
use kbt::metrics::square_loss_binary;
use kbt::synth::paper::{generate, SyntheticConfig};
use kbt::{Model, TrustPipeline};

/// The headline claim (Figure 3): on the paper's synthetic data the
/// multi-layer model recovers source accuracies far better than the
/// single-layer baseline once extraction noise is present.
#[test]
fn multilayer_recovers_source_accuracy_better_than_singlelayer() {
    let mut multi_sqa = 0.0;
    let mut single_sqa = 0.0;
    let runs = 3;
    for rep in 0..runs {
        let data = generate(&SyntheticConfig {
            seed: 500 + rep,
            ..SyntheticConfig::default()
        });
        let m = TrustPipeline::new()
            .cube(data.cube.clone())
            .model(Model::multi_layer())
            .run();
        let s = TrustPipeline::new()
            .cube(data.cube.clone())
            .model(Model::accu())
            .run();
        for w in 0..data.cube.num_sources() {
            let truth = data.truth.source_accuracy[w];
            multi_sqa += (m.kbt(SourceId::new(w as u32)) - truth).powi(2);
            single_sqa += (s.kbt(SourceId::new(w as u32)) - truth).powi(2);
        }
    }
    assert!(
        multi_sqa < single_sqa,
        "multi SqA {multi_sqa:.4} must beat single SqA {single_sqa:.4}"
    );
}

/// Planted extractor precision must be recovered within a loose tolerance:
/// P = 0.8³ ≈ 0.51 per the synthetic model.
#[test]
fn extractor_precision_is_recovered() {
    let data = generate(&SyntheticConfig {
        triples_per_source: 200,
        seed: 901,
        ..SyntheticConfig::default()
    });
    let r = TrustPipeline::new().cube(data.cube).run();
    let precision = r.extractor_precision().unwrap();
    for (e, p) in precision.iter().enumerate().take(5) {
        assert!((p - 0.512).abs() < 0.2, "P[{e}] = {p} far from P³ = 0.512");
    }
}

/// Extraction-correctness estimates must separate truly provided triples
/// from extraction artifacts.
#[test]
fn correctness_separates_provided_from_hallucinated() {
    let data = generate(&SyntheticConfig {
        seed: 77,
        ..SyntheticConfig::default()
    });
    let r = TrustPipeline::new().cube(data.cube).run();
    let correctness = r.correctness().unwrap();
    let (mut sp, mut np, mut su, mut nu) = (0.0, 0usize, 0.0, 0usize);
    for (g, &c) in correctness.iter().enumerate() {
        if data.truth.group_provided[g] {
            sp += c;
            np += 1;
        } else {
            su += c;
            nu += 1;
        }
    }
    let mean_provided = sp / np as f64;
    let mean_hallucinated = su / nu as f64;
    assert!(
        mean_provided > mean_hallucinated + 0.2,
        "no separation: provided {mean_provided:.3} vs hallucinated {mean_hallucinated:.3}"
    );
}

/// Same seed → bit-identical results; different seed → different corpus.
#[test]
fn pipeline_is_deterministic() {
    let cfg = SyntheticConfig {
        seed: 31337,
        ..SyntheticConfig::default()
    };
    let a = generate(&cfg);
    let b = generate(&cfg);
    let ra = TrustPipeline::new().cube(a.cube.clone()).run();
    let rb = TrustPipeline::new().cube(b.cube).run();
    assert_eq!(ra.source_trust(), rb.source_trust());
    assert_eq!(ra.correctness(), rb.correctness());
    let c = generate(&SyntheticConfig {
        seed: 31338,
        ..SyntheticConfig::default()
    });
    assert_ne!(a.cube.num_cells(), 0);
    assert!(
        c.cube.num_cells() != a.cube.num_cells() || {
            let rc = TrustPipeline::new().cube(c.cube).run();
            rc.source_trust() != ra.source_trust()
        }
    );
}

/// Parallel execution must not change results: 1 worker ≡ N workers.
/// Thread counts are per-run (`.threads(..)`), so this test cannot race
/// with other tests the way the old `set_num_threads` global did.
#[test]
fn parallel_equals_serial() {
    let data = generate(&SyntheticConfig {
        seed: 4242,
        ..SyntheticConfig::default()
    });
    let serial = TrustPipeline::new()
        .cube(data.cube.clone())
        .threads(1)
        .run();
    let parallel = TrustPipeline::new()
        .cube(data.cube.clone())
        .threads(0) // hardware default
        .run();
    assert_eq!(serial.source_trust(), parallel.source_trust());
    assert_eq!(serial.extractor_precision(), parallel.extractor_precision());
    assert_eq!(serial.correctness(), parallel.correctness());
    assert_eq!(serial.truth_of_group(), parallel.truth_of_group());
}

/// The per-model `ModelConfig::threads` knob is honored by the engines
/// directly (without going through the pipeline builder).
#[test]
fn model_config_threads_is_equivalent_to_builder_threads() {
    use kbt::FusionModel;
    let data = generate(&SyntheticConfig {
        seed: 555,
        ..SyntheticConfig::default()
    });
    let via_cfg = kbt::MultiLayerModel::new(ModelConfig {
        threads: Some(1),
        ..ModelConfig::default()
    })
    .fit(&data.cube, &QualityInit::Default);
    let via_builder = TrustPipeline::new()
        .cube(data.cube.clone())
        .threads(1)
        .run();
    assert_eq!(via_cfg.source_trust(), via_builder.source_trust());
    assert_eq!(via_cfg.truth_of_group(), via_builder.truth_of_group());
}

/// SqV on the default synthetic setup should be in the ballpark the paper
/// reports for five extractors (Figure 3: ≈ 0.03–0.1).
#[test]
fn sqv_is_paper_magnitude() {
    let data = generate(&SyntheticConfig {
        seed: 11,
        ..SyntheticConfig::default()
    });
    let r = TrustPipeline::new().cube(data.cube.clone()).run();
    let eval = data.value_eval_set();
    let pred: Vec<f64> = eval
        .iter()
        .map(|(d, v, _)| r.posteriors().prob(*d, *v))
        .collect();
    let truth: Vec<bool> = eval.iter().map(|(_, _, t)| *t).collect();
    let sqv = square_loss_binary(&pred, &truth).unwrap();
    assert!(sqv < 0.15, "SqV = {sqv} too high");
}
