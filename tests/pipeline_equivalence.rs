//! API-equivalence tests: `TrustPipeline` / `FusionModel::fit` must be
//! bit-for-bit identical to the legacy `Model::new(cfg).run(..)` calls
//! they replace, on fixed-seed corpora. Plus convergence-trace sanity.

#![allow(deprecated)] // the point is to compare against the legacy path

use kbt::core::{ModelConfig, QualityInit, ValueModel};
use kbt::datamodel::SourceId;
use kbt::synth::paper::{generate, SyntheticConfig};
use kbt::synth::web::{generate as gen_web, WebCorpusConfig};
use kbt::{Model, MultiLayerModel, SingleLayerModel, TrustPipeline};

#[test]
fn pipeline_multilayer_is_bit_identical_to_legacy_run() {
    let data = generate(&SyntheticConfig {
        seed: 20_26,
        ..SyntheticConfig::default()
    });
    let legacy =
        MultiLayerModel::new(ModelConfig::default()).run(&data.cube, &QualityInit::Default);
    let report = TrustPipeline::new()
        .cube(data.cube.clone())
        .model(Model::multi_layer())
        .run();

    assert_eq!(report.source_trust(), legacy.params.source_accuracy);
    assert_eq!(report.correctness(), Some(&legacy.correctness[..]));
    assert_eq!(report.truth_of_group(), legacy.truth_of_group);
    assert_eq!(report.covered_group(), legacy.covered_group);
    assert_eq!(report.active_source(), legacy.active_source);
    assert_eq!(
        report.extractor_precision(),
        Some(&legacy.params.precision[..])
    );
    assert_eq!(report.extractor_recall(), Some(&legacy.params.recall[..]));
    assert_eq!(report.iterations(), legacy.iterations);
    assert_eq!(report.converged(), legacy.converged);
    for d in 0..data.cube.num_items() {
        let d = kbt::ItemId::new(d as u32);
        assert_eq!(
            report.posteriors().observed_mass(d),
            legacy.posteriors.observed_mass(d)
        );
    }
    // The embedded detail is the very same result type.
    let detail = report.as_multi_layer().unwrap();
    assert_eq!(detail.params.source_accuracy, legacy.params.source_accuracy);
    assert_eq!(detail.truth_given_provided, legacy.truth_given_provided);
}

#[test]
fn pipeline_accu_is_bit_identical_to_legacy_single_layer() {
    let data = generate(&SyntheticConfig {
        seed: 20_27,
        ..SyntheticConfig::default()
    });
    let legacy = SingleLayerModel::new(ModelConfig::single_layer_default())
        .run(&data.cube, &QualityInit::Default);
    let report = TrustPipeline::new()
        .cube(data.cube.clone())
        .model(Model::accu())
        .run();

    assert_eq!(report.source_trust(), legacy.source_accuracy);
    assert_eq!(report.truth_of_group(), legacy.truth_of_group);
    assert_eq!(report.covered_group(), legacy.covered_group);
    assert_eq!(report.iterations(), legacy.iterations);
    let detail = report.as_single_layer().unwrap();
    assert_eq!(detail.pair_accuracy, legacy.pair_accuracy);
    assert_eq!(detail.pairs, legacy.pairs);
}

#[test]
fn pipeline_popaccu_is_bit_identical_to_legacy_popaccu() {
    let data = generate(&SyntheticConfig {
        seed: 20_28,
        ..SyntheticConfig::default()
    });
    let cfg = ModelConfig {
        value_model: ValueModel::PopAccu,
        ..ModelConfig::single_layer_default()
    };
    let legacy = SingleLayerModel::new(cfg).run(&data.cube, &QualityInit::Default);
    // Model::pop_accu() forces the value model; handing it an Accu-flavored
    // config must still reproduce the PopAccu run.
    let report = TrustPipeline::new()
        .cube(data.cube.clone())
        .model(Model::PopAccu(ModelConfig::single_layer_default()))
        .run();
    assert_eq!(report.source_trust(), legacy.source_accuracy);
    assert_eq!(report.truth_of_group(), legacy.truth_of_group);
}

#[test]
fn pipeline_gold_init_is_bit_identical_on_web_corpus() {
    // The `+` variant on the KV-scale corpus: gold-seeded initialization
    // through both paths.
    let corpus = gen_web(&WebCorpusConfig::tiny(64));
    let init = kbt_bench_gold_init(&corpus);
    let legacy = MultiLayerModel::new(ModelConfig::default()).run(&corpus.cube, &init);
    let report = TrustPipeline::new()
        .cube(corpus.cube.clone())
        .init(init)
        .run();
    assert_eq!(report.source_trust(), legacy.params.source_accuracy);
    assert_eq!(report.correctness(), Some(&legacy.correctness[..]));
}

/// A miniature of `kbt_bench::harness::gold_init` (the bench crate is not
/// a dependency of the facade's tests): smoothed per-source accuracy from
/// gold labels.
fn kbt_bench_gold_init(corpus: &kbt::synth::WebCorpus) -> QualityInit {
    let cube = &corpus.cube;
    let labels = corpus.gold_labels();
    let mut src_true = vec![0usize; cube.num_sources()];
    let mut src_tot = vec![0usize; cube.num_sources()];
    for (g, grp) in cube.groups().iter().enumerate() {
        if let Some(l) = labels[g] {
            src_tot[grp.source.index()] += 1;
            if l {
                src_true[grp.source.index()] += 1;
            }
        }
    }
    QualityInit::FromGold {
        source_accuracy: src_true
            .iter()
            .zip(&src_tot)
            .map(|(t, n)| (*n > 0).then(|| (*t as f64 + 1.0) / (*n as f64 + 2.0)))
            .collect(),
        extractor_precision: vec![],
        extractor_recall: vec![],
    }
}

#[test]
fn trace_deltas_shrink_monotonically_on_consensus_data() {
    // On a clean consensus corpus EM contracts straight toward the fixed
    // point: each round's parameter delta is no larger than the last.
    use kbt::datamodel::{ExtractorId, ItemId, Observation, ValueId};
    let mut observations = Vec::new();
    for w in 0..6u32 {
        for d in 0..20u32 {
            for e in 0..3u32 {
                observations.push(Observation::certain(
                    ExtractorId::new(e),
                    SourceId::new(w),
                    ItemId::new(d),
                    ValueId::new(d),
                ));
            }
        }
    }
    let report = TrustPipeline::new()
        .observations(observations)
        .model(Model::MultiLayer(ModelConfig {
            max_iterations: 12,
            ..ModelConfig::default()
        }))
        .run();
    let deltas: Vec<f64> = report.trace.rounds.iter().map(|r| r.delta).collect();
    assert!(!deltas.is_empty());
    for w in deltas.windows(2) {
        assert!(
            w[1] <= w[0] + 1e-12,
            "delta increased between rounds: {deltas:?}"
        );
    }
    // And the pseudo log-likelihood never degrades as posteriors sharpen.
    let lls: Vec<f64> = report
        .trace
        .rounds
        .iter()
        .map(|r| r.log_likelihood)
        .collect();
    for w in lls.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-9,
            "pseudo log-likelihood degraded: {lls:?}"
        );
    }
    // Wall-clock was actually measured: an EM round over 360 cells takes
    // well over a nanosecond, so an all-zero trace means Stopwatch::lap
    // regressed.
    assert!(
        report.trace.total_wall() > std::time::Duration::ZERO,
        "no wall time recorded across {} rounds",
        report.trace.rounds.len()
    );
}

#[test]
fn trace_matches_run_traced_output() {
    let data = generate(&SyntheticConfig {
        seed: 9_000,
        ..SyntheticConfig::default()
    });
    let (legacy, trace) =
        MultiLayerModel::new(ModelConfig::default()).run_traced(&data.cube, &QualityInit::Default);
    let report = TrustPipeline::new().cube(data.cube.clone()).run();
    assert_eq!(report.trace.rounds.len(), trace.rounds.len());
    assert_eq!(report.trace.converged, trace.converged);
    for (a, b) in report.trace.rounds.iter().zip(&trace.rounds) {
        // Wall time differs run-to-run; the numeric diagnostics must not.
        assert_eq!(a.iteration, b.iteration);
        assert_eq!(a.delta, b.delta);
        assert_eq!(a.log_likelihood, b.log_likelihood);
    }
    assert_eq!(report.iterations(), legacy.iterations);
}
