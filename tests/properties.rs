//! Property-based tests over the core invariants, spanning crates.

use kbt::core::ModelConfig;
use kbt::datamodel::{CubeBuilder, ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::metrics::{auc_pr, paper_bucket_edges, wdev, PrCurve};
use kbt::{Model, TrustPipeline};
use proptest::prelude::*;

/// Arbitrary small observation sets.
fn observations() -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec(
        (0u32..6, 0u32..8, 0u32..10, 0u32..5, 0.0f64..=1.0).prop_map(|(e, w, d, v, c)| {
            Observation {
                extractor: ExtractorId::new(e),
                source: SourceId::new(w),
                item: ItemId::new(d),
                value: ValueId::new(v),
                confidence: c,
            }
        }),
        1..120,
    )
}

proptest! {
    /// The full model never produces anything outside [0, 1] and the
    /// per-item posterior always normalizes over the domain.
    #[test]
    fn model_outputs_are_probabilities(obs in observations()) {
        let mut b = CubeBuilder::new();
        for o in &obs {
            b.push(*o);
        }
        let cube = b.build();
        let cfg = ModelConfig::default();
        let r = TrustPipeline::new()
            .cube(cube.clone())
            .model(Model::MultiLayer(cfg.clone()))
            .run();
        for &c in r.correctness().unwrap() {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        for &t in r.truth_of_group() {
            prop_assert!((0.0..=1.0).contains(&t));
        }
        for &a in r.source_trust() {
            prop_assert!((0.0..=1.0).contains(&a));
        }
        let params = &r.as_multi_layer().unwrap().params;
        for e in 0..cube.num_extractors() {
            prop_assert!((0.0..=1.0).contains(&params.precision[e]));
            prop_assert!((0.0..=1.0).contains(&params.recall[e]));
            prop_assert!(params.q[e] < params.recall[e] + 1e-9,
                "Q must stay below R (vote monotonicity)");
        }
        // Posterior normalization per item with any observed value.
        for d in 0..cube.num_items() {
            let d = ItemId::new(d as u32);
            let obs_mass = r.posteriors().observed_mass(d);
            let unobs = r.posteriors()
                .prob(d, ValueId::new(u32::MAX - 1)); // surely unobserved
            let k = (cfg.n_false_values + 1)
                .saturating_sub(r.posteriors().observed(d).len());
            let total = obs_mass + unobs * k as f64;
            prop_assert!((total - 1.0).abs() < 1e-6, "item {d:?} total {total}");
        }
    }

    /// Cube construction conserves observations: every pushed cell is
    /// reachable and group/cell counts are consistent.
    #[test]
    fn cube_conserves_data(obs in observations()) {
        let mut b = CubeBuilder::new();
        for o in &obs {
            b.push(*o);
        }
        let cube = b.build();
        let mut distinct = std::collections::BTreeSet::new();
        for o in &obs {
            distinct.insert((o.extractor.0, o.source.0, o.item.0, o.value.0));
        }
        prop_assert_eq!(cube.num_cells(), distinct.len());
        let cells_via_groups: usize = cube
            .groups()
            .iter()
            .map(|g| cube.cells_of(g).len())
            .sum();
        prop_assert_eq!(cells_via_groups, cube.num_cells());
        // Every group reachable through both indices.
        let via_items: usize = (0..cube.num_items())
            .map(|d| cube.groups_of_item(ItemId::new(d as u32)).count())
            .sum();
        prop_assert_eq!(via_items, cube.num_groups());
        let via_sources: usize = (0..cube.num_sources())
            .map(|w| cube.source_groups(SourceId::new(w as u32)).len())
            .sum();
        prop_assert_eq!(via_sources, cube.num_groups());
    }

    /// PR curves: recall is non-decreasing, precision within [0,1], AUC
    /// within [0,1], and a perfect ranking scores 1.
    #[test]
    fn pr_curve_invariants(labels in prop::collection::vec(any::<bool>(), 1..200),
                           seed in 0u64..1000) {
        prop_assume!(labels.iter().any(|&l| l));
        // Scores correlated with labels by seed-driven noise.
        let mut state = seed.max(1);
        let mut scores = Vec::with_capacity(labels.len());
        for &l in &labels {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64;
            scores.push(if l { 0.5 + noise / 2.0 } else { noise / 2.0 });
        }
        let curve = PrCurve::from_labels(&scores, &labels).unwrap();
        let mut prev_r = 0.0;
        for &(r, p) in &curve.points {
            prop_assert!(r >= prev_r - 1e-12);
            prop_assert!((0.0..=1.0).contains(&p));
            prev_r = r;
        }
        let auc = curve.auc();
        prop_assert!((0.0..=1.0 + 1e-9).contains(&auc));
        // These scores perfectly separate classes → AUC = 1.
        prop_assert!((auc - 1.0).abs() < 1e-9, "auc = {auc}");
        let _ = auc_pr(&scores, &labels);
    }

    /// WDev is zero for perfectly calibrated point masses and bounded by 1.
    #[test]
    fn wdev_bounds(preds in prop::collection::vec(0.0f64..=1.0, 1..300)) {
        // Labels drawn deterministically from predictions (calibrated in
        // expectation is hard; we check bounds only).
        let labels: Vec<bool> = preds.iter().map(|&p| p > 0.5).collect();
        if let Some(w) = wdev(&preds, &labels) {
            prop_assert!((0.0..=1.0).contains(&w));
        }
        // Bucket edges are strictly increasing and span [0, 1].
        let e = paper_bucket_edges();
        for win in e.windows(2) {
            prop_assert!(win[0] < win[1]);
        }
    }
}
