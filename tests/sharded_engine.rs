//! Acceptance tests for the sharded EM execution engine:
//!
//! 1. fixed-seed proof that sharded execution — both the columnar chunked
//!    engine (`Sharded`) and the pre-columnar row-major engine
//!    (`ShardedRows`) — is **bit-for-bit identical** to the flat path at
//!    1, 2, and 8 threads (both models), and
//! 2. warm-started incremental fusion on a ~5% delta converges in
//!    **strictly fewer** EM iterations than a cold rerun on the merged
//!    cube.

use kbt::core::{ExecMode, FusionModel, ModelConfig, MultiLayerModel, SingleLayerModel};
use kbt::datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::synth::paper::{generate, SyntheticConfig};
use kbt::{FusionReport, FusionSession, Model, QualityInit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn assert_reports_bit_identical(a: &FusionReport, b: &FusionReport, ctx: &str) {
    assert_eq!(a.source_trust(), b.source_trust(), "{ctx}: source trust");
    assert_eq!(a.truth_of_group(), b.truth_of_group(), "{ctx}: truth");
    assert_eq!(a.covered_group(), b.covered_group(), "{ctx}: coverage");
    assert_eq!(a.correctness(), b.correctness(), "{ctx}: correctness");
    assert_eq!(a.posteriors(), b.posteriors(), "{ctx}: posteriors");
    assert_eq!(a.iterations(), b.iterations(), "{ctx}: iterations");
    assert_eq!(a.converged(), b.converged(), "{ctx}: converged");
    assert_eq!(
        a.extractor_precision(),
        b.extractor_precision(),
        "{ctx}: precision"
    );
    assert_eq!(a.extractor_recall(), b.extractor_recall(), "{ctx}: recall");
    // Per-round parameter deltas are params-derived and must match too.
    let da: Vec<f64> = a.trace.rounds.iter().map(|r| r.delta).collect();
    let db: Vec<f64> = b.trace.rounds.iter().map(|r| r.delta).collect();
    assert_eq!(da, db, "{ctx}: trace deltas");
}

/// Sharded multi-layer inference is bit-for-bit the flat path, at 1, 2,
/// and 8 threads, on a fixed-seed synthetic corpus.
#[test]
fn multilayer_sharded_matches_flat_bitwise_at_1_2_8_threads() {
    let data = generate(&SyntheticConfig {
        num_sources: 20,
        triples_per_source: 60,
        seed: 20240915,
        ..SyntheticConfig::default()
    });
    let flat_cfg = ModelConfig {
        exec_mode: ExecMode::Flat,
        threads: Some(1),
        max_iterations: 8,
        ..ModelConfig::default()
    };
    let flat = MultiLayerModel::new(flat_cfg.clone()).fit(&data.cube, &QualityInit::Default);
    assert!(
        flat.iterations() >= 2,
        "corpus must exercise several rounds"
    );
    for mode in [ExecMode::Sharded, ExecMode::ShardedRows] {
        for threads in [1usize, 2, 8] {
            let cfg = ModelConfig {
                exec_mode: mode,
                threads: Some(threads),
                ..flat_cfg.clone()
            };
            let sharded = MultiLayerModel::new(cfg).fit(&data.cube, &QualityInit::Default);
            assert_reports_bit_identical(
                &flat,
                &sharded,
                &format!("multi, {mode:?}, {threads} threads"),
            );
        }
    }
    // The flat path itself is thread-invariant; pin that too.
    let flat8 = MultiLayerModel::new(ModelConfig {
        threads: Some(8),
        ..flat_cfg
    })
    .fit(&data.cube, &QualityInit::Default);
    assert_reports_bit_identical(&flat, &flat8, "flat 1 vs 8 threads");
}

/// Same bit-for-bit guarantee for the single-layer baseline.
#[test]
fn singlelayer_sharded_matches_flat_bitwise_at_1_2_8_threads() {
    let data = generate(&SyntheticConfig {
        num_sources: 15,
        triples_per_source: 50,
        seed: 777,
        ..SyntheticConfig::default()
    });
    let flat_cfg = ModelConfig {
        exec_mode: ExecMode::Flat,
        threads: Some(1),
        ..ModelConfig::single_layer_default()
    };
    let flat = SingleLayerModel::new(flat_cfg.clone()).fit(&data.cube, &QualityInit::Default);
    for mode in [ExecMode::Sharded, ExecMode::ShardedRows] {
        for threads in [1usize, 2, 8] {
            let cfg = ModelConfig {
                exec_mode: mode,
                threads: Some(threads),
                ..flat_cfg.clone()
            };
            let sharded = SingleLayerModel::new(cfg).fit(&data.cube, &QualityInit::Default);
            assert_reports_bit_identical(
                &flat,
                &sharded,
                &format!("single, {mode:?}, {threads} threads"),
            );
        }
    }
}

/// A seeded stream of observations with mixed source accuracies and a
/// noisy extractor — EM needs many rounds to converge from cold.
fn noisy_stream(rng: &mut StdRng, items: std::ops::Range<u32>) -> Vec<Observation> {
    let mut out = Vec::new();
    let num_sources = 40u32;
    for w in 0..num_sources {
        let acc = 0.35 + 0.6 * (w as f64 / num_sources as f64);
        for d in items.clone() {
            let v = if rng.gen::<f64>() < acc {
                d % 3
            } else {
                3 + rng.gen_range(0u32..4)
            };
            for e in 0..5u32 {
                if rng.gen::<f64>() < 0.7 {
                    let ev = if rng.gen::<f64>() < 0.15 {
                        3 + rng.gen_range(0u32..4)
                    } else {
                        v
                    };
                    out.push(Observation {
                        extractor: ExtractorId::new(e),
                        source: SourceId::new(w),
                        item: ItemId::new(d),
                        value: ValueId::new(ev),
                        confidence: 0.6 + 0.4 * rng.gen::<f64>(),
                    });
                }
            }
        }
    }
    out
}

/// Warm-started incremental fusion on a ~5% delta converges in strictly
/// fewer EM iterations than a cold rerun on the merged cube (fixed seed).
#[test]
fn warm_start_beats_cold_rerun_on_merged_cube() {
    let mut rng = StdRng::seed_from_u64(1234);
    let base = noisy_stream(&mut rng, 0..200);
    let delta = noisy_stream(&mut rng, 200..210); // 5% new items
    let cfg = ModelConfig {
        max_iterations: 50,
        convergence_eps: 1e-4,
        ..ModelConfig::default()
    };

    let mut session =
        FusionSession::from_observations(base.clone(), Model::MultiLayer(cfg.clone()));
    let cold_base = session.run();
    assert!(cold_base.converged());
    let warm = session.update(&delta).run();
    assert!(warm.converged());

    let all: Vec<Observation> = base.into_iter().chain(delta).collect();
    let cold_merged = FusionSession::from_observations(all, Model::MultiLayer(cfg)).run();
    assert!(cold_merged.converged());

    assert!(
        warm.iterations() < cold_merged.iterations(),
        "warm-started run took {} iterations, cold rerun took {}",
        warm.iterations(),
        cold_merged.iterations()
    );
    // The warm run must land on the same answers: same trust ranking of
    // a clearly-bad and a clearly-good source, and close accuracies.
    let (lo, hi) = (SourceId::new(1), SourceId::new(38));
    assert!(warm.kbt(hi) > warm.kbt(lo));
    assert!(cold_merged.kbt(hi) > cold_merged.kbt(lo));
    for w in 0..cold_merged.source_trust().len() {
        let diff = (warm.source_trust()[w] - cold_merged.source_trust()[w]).abs();
        assert!(diff < 0.05, "W{w}: warm vs cold accuracy differs by {diff}");
    }
}

/// Warm-starting repeatedly over a stream of deltas stays cheap: every
/// incremental round converges in no more iterations than the initial
/// cold run.
#[test]
fn delta_stream_converges_in_few_rounds_each() {
    let mut rng = StdRng::seed_from_u64(99);
    let base = noisy_stream(&mut rng, 0..120);
    let cfg = ModelConfig {
        max_iterations: 50,
        convergence_eps: 1e-4,
        ..ModelConfig::default()
    };
    let mut session = FusionSession::from_observations(base, Model::MultiLayer(cfg));
    let cold_iters = session.run().iterations();
    for step in 0..4u32 {
        let delta = noisy_stream(&mut rng, 120 + step * 5..125 + step * 5);
        let warm = session.update(&delta).run();
        assert!(warm.converged(), "step {step}");
        assert!(
            warm.iterations() <= cold_iters,
            "step {step}: warm {} vs cold {}",
            warm.iterations(),
            cold_iters
        );
    }
    assert_eq!(session.deltas_applied(), 4);
}
