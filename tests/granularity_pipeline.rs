//! Integration tests for the split-and-merge granularity pipeline against
//! the KV-scale corpus simulator, driven through `TrustPipeline`.

use kbt::core::config::AbsencePolicy;
use kbt::core::ModelConfig;
use kbt::datamodel::SourceId;
use kbt::granularity::SplitMergeConfig;
use kbt::synth::web::{generate, WebCorpusConfig};
use kbt::synth::WebCorpus;
use kbt::{Model, PipelineRun, TrustPipeline};

fn kv_cfg() -> ModelConfig {
    ModelConfig {
        min_source_support: 2,
        absence_policy: AbsencePolicy::SourceCandidates,
        ..ModelConfig::default()
    }
}

/// A pipeline regrouping `corpus` at the given bounds, with the corpus's
/// real source hierarchy.
fn regrouped(corpus: &WebCorpus, sm: SplitMergeConfig) -> PipelineRun {
    let keys: Vec<_> = corpus
        .observations
        .iter()
        .map(|o| corpus.finest_source_key(o))
        .collect();
    TrustPipeline::new()
        .observations(corpus.observations.clone())
        .source_keys(move |i, _| keys[i].clone())
        .granularity(sm)
        .model(Model::MultiLayer(kv_cfg()))
        .run_detailed()
}

#[test]
fn merging_improves_source_coverage() {
    let corpus = generate(&WebCorpusConfig::tiny(21));
    let fine = TrustPipeline::new()
        .cube(corpus.cube.clone())
        .model(Model::MultiLayer(kv_cfg()))
        .run();
    let merged = regrouped(
        &corpus,
        SplitMergeConfig {
            min_size: 5,
            max_size: 10_000,
        },
    )
    .report;
    assert!(
        merged.coverage() >= fine.coverage(),
        "merged coverage {} must not fall below page-level {}",
        merged.coverage(),
        fine.coverage()
    );
}

#[test]
fn working_sources_respect_size_bounds() {
    let corpus = generate(&WebCorpusConfig::tiny(33));
    let sm = SplitMergeConfig {
        min_size: 4,
        max_size: 50,
    };
    let run = regrouped(&corpus, sm);
    let sources = run.working_sources.as_deref().unwrap();
    let row_source = run.row_source.as_deref().unwrap();
    assert_eq!(run.cube.num_sources(), sources.len());
    for ws in sources {
        // Oversized only allowed at the very top of the hierarchy after
        // merging; split output must respect M.
        if ws.bucket.is_some() {
            assert!(
                ws.rows.len() <= sm.max_size,
                "split bucket of {} triples",
                ws.rows.len()
            );
        }
    }
    // Every observation row got exactly one working source in range.
    for &s in row_source {
        assert!((s as usize) < sources.len());
    }
}

#[test]
fn regrouping_preserves_triple_truth_structure() {
    // Regrouping must not change the set of distinct (item, value)
    // triples in the cube — only who "owns" them.
    use std::collections::BTreeSet;
    let corpus = generate(&WebCorpusConfig::tiny(55));
    let before: BTreeSet<(u32, u32)> = corpus
        .cube
        .groups()
        .iter()
        .map(|g| (g.item.0, g.value.0))
        .collect();
    let run = regrouped(
        &corpus,
        SplitMergeConfig {
            min_size: 5,
            max_size: 100,
        },
    );
    let after: BTreeSet<(u32, u32)> = run
        .cube
        .groups()
        .iter()
        .map(|g| (g.item.0, g.value.0))
        .collect();
    assert_eq!(before, after);
}

#[test]
fn site_level_model_scores_most_sites() {
    let corpus = generate(&WebCorpusConfig::tiny(88));
    // Merge everything to site level via the hierarchy (huge m forces
    // full merging up to the website).
    let run = regrouped(
        &corpus,
        SplitMergeConfig {
            min_size: 1_000_000,
            max_size: usize::MAX,
        },
    );
    let sources = run.working_sources.as_deref().unwrap();
    // All working sources are now whole websites (depth-1 keys).
    for ws in sources {
        assert_eq!(ws.key.depth(), 1, "expected site-level keys");
    }
    let r = &run.report;
    let active = r.active_source().iter().filter(|&&a| a).count();
    assert!(
        active * 10 >= sources.len() * 8,
        "most site-level sources should be scorable: {active}/{}",
        sources.len()
    );
    // KBT scores are probabilities.
    for w in 0..run.cube.num_sources() {
        let a = r.kbt(SourceId::new(w as u32));
        assert!((0.0..=1.0).contains(&a));
    }
}
