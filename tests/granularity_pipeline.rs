//! Integration tests for the split-and-merge granularity pipeline against
//! the KV-scale corpus simulator.

use kbt::core::config::AbsencePolicy;
use kbt::core::{ModelConfig, MultiLayerModel, QualityInit};
use kbt::datamodel::SourceId;
use kbt::granularity::{regroup_cube, SplitMergeConfig};
use kbt::synth::web::{generate, WebCorpusConfig};

fn kv_cfg() -> ModelConfig {
    ModelConfig {
        min_source_support: 2,
        absence_policy: AbsencePolicy::SourceCandidates,
        ..ModelConfig::default()
    }
}

#[test]
fn merging_improves_source_coverage() {
    let corpus = generate(&WebCorpusConfig::tiny(21));
    let cfg = kv_cfg();
    let fine = MultiLayerModel::new(cfg.clone()).run(&corpus.cube, &QualityInit::Default);

    let (cube, _, _) = regroup_cube(
        &corpus.observations,
        |i| corpus.finest_source_key(&corpus.observations[i]),
        &SplitMergeConfig {
            min_size: 5,
            max_size: 10_000,
        },
    );
    let merged = MultiLayerModel::new(cfg).run(&cube, &QualityInit::Default);
    assert!(
        merged.coverage() >= fine.coverage(),
        "merged coverage {} must not fall below page-level {}",
        merged.coverage(),
        fine.coverage()
    );
}

#[test]
fn working_sources_respect_size_bounds() {
    let corpus = generate(&WebCorpusConfig::tiny(33));
    let sm = SplitMergeConfig {
        min_size: 4,
        max_size: 50,
    };
    let (cube, sources, row_source) = regroup_cube(
        &corpus.observations,
        |i| corpus.finest_source_key(&corpus.observations[i]),
        &sm,
    );
    assert_eq!(cube.num_sources(), sources.len());
    for (sid, ws) in sources.iter().enumerate() {
        let triples = ws.rows.len();
        // Oversized only allowed at the very top of the hierarchy after
        // merging; split output must respect M.
        if ws.bucket.is_some() {
            assert!(triples <= sm.max_size, "split bucket of {triples} triples");
        }
        // Every observation mapped to this source agrees with row_source.
        let _ = sid;
    }
    // Every observation row got exactly one working source in range.
    for &s in &row_source {
        assert!((s as usize) < sources.len());
    }
}

#[test]
fn regrouping_preserves_triple_truth_structure() {
    // Regrouping must not change the set of distinct (item, value)
    // triples in the cube — only who "owns" them.
    use std::collections::BTreeSet;
    let corpus = generate(&WebCorpusConfig::tiny(55));
    let before: BTreeSet<(u32, u32)> = corpus
        .cube
        .groups()
        .iter()
        .map(|g| (g.item.0, g.value.0))
        .collect();
    let (cube, _, _) = regroup_cube(
        &corpus.observations,
        |i| corpus.finest_source_key(&corpus.observations[i]),
        &SplitMergeConfig {
            min_size: 5,
            max_size: 100,
        },
    );
    let after: BTreeSet<(u32, u32)> = cube
        .groups()
        .iter()
        .map(|g| (g.item.0, g.value.0))
        .collect();
    assert_eq!(before, after);
}

#[test]
fn site_level_model_scores_most_sites() {
    let corpus = generate(&WebCorpusConfig::tiny(88));
    // Merge everything to site level via the hierarchy (huge m forces
    // full merging up to the website).
    let (cube, sources, _) = regroup_cube(
        &corpus.observations,
        |i| corpus.finest_source_key(&corpus.observations[i]),
        &SplitMergeConfig {
            min_size: 1_000_000,
            max_size: usize::MAX,
        },
    );
    // All working sources are now whole websites (depth-1 keys).
    for ws in &sources {
        assert_eq!(ws.key.depth(), 1, "expected site-level keys");
    }
    let cfg = kv_cfg();
    let r = MultiLayerModel::new(cfg).run(&cube, &QualityInit::Default);
    let active = r.active_source.iter().filter(|&&a| a).count();
    assert!(
        active * 10 >= sources.len() * 8,
        "most site-level sources should be scorable: {active}/{}",
        sources.len()
    );
    // KBT scores are probabilities.
    for w in 0..cube.num_sources() {
        let a = r.kbt(SourceId::new(w as u32));
        assert!((0.0..=1.0).contains(&a));
    }
}
