//! Property tests for incremental fusion: applying a delta through
//! `FusionSession.update` must be equivalent to rebuilding the cube from
//! all observations and running batch EM from the same initialization.

use kbt::core::ModelConfig;
use kbt::datamodel::{CubeBuilder, ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::{FusionModel, FusionSession, Model, QualityInit};
use proptest::prelude::*;

fn observations(max_len: usize) -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec(
        (0u32..5, 0u32..8, 0u32..10, 0u32..5, 0.0f64..=1.0).prop_map(|(e, w, d, v, c)| {
            Observation {
                extractor: ExtractorId::new(e),
                source: SourceId::new(w),
                item: ItemId::new(d),
                value: ValueId::new(v),
                confidence: c,
            }
        }),
        0..max_len,
    )
}

fn build_cube(obs: &[Observation]) -> kbt::ObservationCube {
    let mut b = CubeBuilder::with_capacity(obs.len());
    for o in obs {
        b.push(*o);
    }
    b.build()
}

proptest! {
    /// The delta-merged cube is structurally identical to a full rebuild.
    #[test]
    fn apply_delta_equals_full_rebuild(base in observations(80), delta in observations(40)) {
        prop_assume!(!base.is_empty());
        let incremental = build_cube(&base).apply_delta(&delta);
        let all: Vec<Observation> = base.iter().chain(&delta).copied().collect();
        let full = build_cube(&all);
        prop_assert_eq!(incremental.groups(), full.groups());
        prop_assert_eq!(incremental.num_cells(), full.num_cells());
        for (gi, gf) in incremental.groups().iter().zip(full.groups()) {
            prop_assert_eq!(incremental.cells_of(gi), full.cells_of(gf));
        }
        prop_assert_eq!(incremental.num_sources(), full.num_sources());
        prop_assert_eq!(incremental.num_extractors(), full.num_extractors());
        prop_assert_eq!(incremental.num_items(), full.num_items());
        prop_assert_eq!(incremental.num_values(), full.num_values());
        for w in 0..full.num_sources() {
            let w = SourceId::new(w as u32);
            prop_assert_eq!(incremental.source_groups(w), full.source_groups(w));
            prop_assert_eq!(incremental.extractors_on_source(w), full.extractors_on_source(w));
        }
    }

    /// `FusionSession.update(delta)` followed by EM is equivalent (within
    /// 1e-9) to rebuilding from all observations and running batch EM
    /// from the same init.
    #[test]
    fn updated_session_em_matches_batch_em(base in observations(80), delta in observations(40)) {
        prop_assume!(!base.is_empty());
        let cfg = ModelConfig::default();

        let mut session = FusionSession::from_observations(base.clone(), Model::MultiLayer(cfg.clone()));
        session.update(&delta);
        let incremental = session.run_cold();

        let all: Vec<Observation> = base.iter().chain(&delta).copied().collect();
        let mut batch_session = FusionSession::from_observations(all, Model::MultiLayer(cfg));
        let batch = batch_session.run_cold();

        prop_assert_eq!(incremental.iterations(), batch.iterations());
        for (a, b) in incremental.source_trust().iter().zip(batch.source_trust()) {
            prop_assert!((a - b).abs() < 1e-9, "trust {} vs {}", a, b);
        }
        for (a, b) in incremental.truth_of_group().iter().zip(batch.truth_of_group()) {
            prop_assert!((a - b).abs() < 1e-9, "truth {} vs {}", a, b);
        }
        let (ci, cb) = (incremental.correctness().unwrap(), batch.correctness().unwrap());
        for (a, b) in ci.iter().zip(cb) {
            prop_assert!((a - b).abs() < 1e-9, "correctness {} vs {}", a, b);
        }

        // And the warm re-run from the batch's converged parameters is
        // equivalent on both cubes too (same init ⇒ same trajectory).
        let resumed = QualityInit::Resume(batch.as_multi_layer().unwrap().params.clone());
        let warm_inc = kbt::MultiLayerModel::new(ModelConfig::default())
            .fit(session.cube(), &resumed);
        let warm_batch = kbt::MultiLayerModel::new(ModelConfig::default())
            .fit(batch_session.cube(), &resumed);
        for (a, b) in warm_inc.source_trust().iter().zip(warm_batch.source_trust()) {
            prop_assert!((a - b).abs() < 1e-9, "warm trust {} vs {}", a, b);
        }
    }
}

#[test]
fn session_without_deltas_is_plain_batch() {
    let obs: Vec<Observation> = (0..4u32)
        .flat_map(|w| {
            (0..6u32).map(move |d| {
                Observation::certain(
                    ExtractorId::new(0),
                    SourceId::new(w),
                    ItemId::new(d),
                    ValueId::new(d % 2),
                )
            })
        })
        .collect();
    let via_session = FusionSession::from_observations(obs.clone(), Model::multi_layer()).run();
    let via_pipeline = kbt::TrustPipeline::new().observations(obs).run();
    assert_eq!(via_session.source_trust(), via_pipeline.source_trust());
    assert_eq!(via_session.truth_of_group(), via_pipeline.truth_of_group());
}
