//! Property tests for the columnar chunked cube (the `ExecMode::Sharded`
//! engine's layout): on arbitrary observation sets — including ones
//! evolved through [`ObservationCube::apply_delta`] and
//! [`ObservationCube::retract`] — the columnar engine must produce
//! **bit-for-bit** the flat reference path's results at 1, 2, and 8
//! threads and at degenerate and huge chunk sizes, and the gathered
//! columns must stay faithful to the row cube.

use kbt::core::{ExecMode, FusionModel, ModelConfig, MultiLayerModel};
use kbt::datamodel::{
    ChunkedCube, ChunkingConfig, CubeBuilder, ExtractorId, ItemId, Observation, ObservationCube,
    SourceId, ValueId,
};
use kbt::{FusionReport, QualityInit};
use proptest::prelude::*;

/// Arbitrary small observation sets (same family as `properties.rs`).
fn observations(max_len: usize) -> impl Strategy<Value = Vec<Observation>> {
    prop::collection::vec(
        (0u32..6, 0u32..8, 0u32..10, 0u32..5, 0.0f64..=1.0).prop_map(|(e, w, d, v, c)| {
            Observation {
                extractor: ExtractorId::new(e),
                source: SourceId::new(w),
                item: ItemId::new(d),
                value: ValueId::new(v),
                confidence: c,
            }
        }),
        1..max_len,
    )
}

fn build(obs: &[Observation]) -> ObservationCube {
    let mut b = CubeBuilder::new();
    for o in obs {
        b.push(*o);
    }
    b.build()
}

fn assert_bit_identical(a: &FusionReport, b: &FusionReport, ctx: &str) {
    assert_eq!(a.source_trust(), b.source_trust(), "{ctx}: source trust");
    assert_eq!(a.truth_of_group(), b.truth_of_group(), "{ctx}: truth");
    assert_eq!(a.covered_group(), b.covered_group(), "{ctx}: coverage");
    assert_eq!(a.correctness(), b.correctness(), "{ctx}: correctness");
    assert_eq!(a.posteriors(), b.posteriors(), "{ctx}: posteriors");
    assert_eq!(a.iterations(), b.iterations(), "{ctx}: iterations");
    assert_eq!(
        a.extractor_precision(),
        b.extractor_precision(),
        "{ctx}: precision"
    );
    assert_eq!(a.extractor_recall(), b.extractor_recall(), "{ctx}: recall");
}

/// Fit `cube` flat, then with the columnar and row-major sharded engines
/// across thread counts and chunk sizes, asserting bitwise equality.
fn assert_all_engines_agree(cube: &ObservationCube, ctx: &str) {
    let flat_cfg = ModelConfig {
        exec_mode: ExecMode::Flat,
        threads: Some(1),
        max_iterations: 5,
        ..ModelConfig::default()
    };
    let flat = MultiLayerModel::new(flat_cfg.clone()).fit(cube, &QualityInit::Default);
    for threads in [1usize, 2, 8] {
        for target_cells in [1usize, 16, 1 << 20] {
            let cfg = ModelConfig {
                exec_mode: ExecMode::Sharded,
                threads: Some(threads),
                chunk_target_cells: target_cells,
                ..flat_cfg.clone()
            };
            let cols = MultiLayerModel::new(cfg).fit(cube, &QualityInit::Default);
            assert_bit_identical(
                &flat,
                &cols,
                &format!("{ctx}: columnar t={threads} chunk={target_cells}"),
            );
        }
        let rows_cfg = ModelConfig {
            exec_mode: ExecMode::ShardedRows,
            threads: Some(threads),
            ..flat_cfg.clone()
        };
        let rows = MultiLayerModel::new(rows_cfg).fit(cube, &QualityInit::Default);
        assert_bit_identical(&flat, &rows, &format!("{ctx}: row-major t={threads}"));
    }
}

/// The gathered columns must be a faithful image of the row cube.
fn assert_columns_faithful(cube: &ObservationCube, target_cells: usize) {
    let cc = ChunkedCube::from_cube(cube, &ChunkingConfig { target_cells });
    assert_eq!(cc.num_groups(), cube.num_groups());
    assert_eq!(cc.num_cells(), cube.num_cells());
    for (g, grp) in cube.groups().iter().enumerate() {
        assert_eq!(cc.group_source[g], grp.source.0);
        assert_eq!(cc.group_item[g], grp.item.0);
        assert_eq!(cc.group_value[g], grp.value.0);
        let cells = cube.cells_of(grp);
        let r = cc.cells_of_group(g);
        assert_eq!(r.len(), cells.len());
        for (k, c) in cells.iter().enumerate() {
            assert_eq!(cc.cell_extractor[r.start + k], c.extractor.0);
            assert_eq!(
                cc.cell_confidence[r.start + k].to_bits(),
                c.confidence.to_bits()
            );
        }
    }
    // Item-major rows mirror `groups_of_item`, with slots resolving into
    // the item's sorted distinct-value list.
    for d in 0..cube.num_items() {
        let item = ItemId::new(d as u32);
        let rows: Vec<usize> = cube.groups_of_item(item).collect();
        let lo = cc.item_offsets[d] as usize;
        let hi = cc.item_offsets[d + 1] as usize;
        assert_eq!(hi - lo, rows.len());
        for (k, &g) in rows.iter().enumerate() {
            let grp = &cube.groups()[g];
            assert_eq!(cc.ig_group[lo + k] as usize, g);
            assert_eq!(
                cc.item_values_of(d)[cc.ig_slot[lo + k] as usize],
                grp.value.0
            );
            assert_eq!(cc.ig_has_cells[lo + k] == 1, !cube.cells_of(grp).is_empty());
        }
    }
    // Chunks tile items and rows without gaps or overlap.
    let mut next_item = 0u32;
    let mut next_row = 0u32;
    for chunk in &cc.chunks {
        assert_eq!(chunk.items.start, next_item);
        assert_eq!(chunk.rows.start, next_row);
        next_item = chunk.items.end;
        next_row = chunk.rows.end;
    }
    assert_eq!(next_item as usize, cc.num_items());
    assert_eq!(next_row as usize, cc.ig_group.len());
}

proptest! {
    /// Full pipeline runs on a freshly built cube: all engines agree
    /// bitwise at 1/2/8 threads and extreme chunk sizes, and the columns
    /// are faithful gathers.
    #[test]
    fn columnar_engine_bitwise_equal_on_built_cubes(obs in observations(80)) {
        let cube = build(&obs);
        assert_columns_faithful(&cube, 7);
        assert_all_engines_agree(&cube, "built");
    }

    /// The equivalence survives `apply_delta`: the columnar view is
    /// rebuilt from the merged cube and all engines still agree bitwise.
    #[test]
    fn columnar_engine_bitwise_equal_after_delta(
        base in observations(60),
        delta in observations(30),
    ) {
        let cube = build(&base).apply_delta(&delta);
        assert_columns_faithful(&cube, 4);
        assert_all_engines_agree(&cube, "delta");
    }

    /// The equivalence survives `retract`, which can leave cell-less
    /// groups (claim-but-never-vote rows) behind — the columnar kernels
    /// must treat them exactly like the flat path does.
    #[test]
    fn columnar_engine_bitwise_equal_after_retract(
        base in observations(60),
        picks in prop::collection::vec((0usize..1000, any::<bool>()), 1..6),
    ) {
        let cube = build(&base);
        // Retract a mix of existing triples (picked by index) and
        // never-present ones (no-ops the engine must shrug off).
        let retractions: Vec<(SourceId, ItemId, ValueId)> = picks
            .iter()
            .map(|&(i, real)| {
                if real && cube.num_groups() > 0 {
                    let g = &cube.groups()[i % cube.num_groups()];
                    (g.source, g.item, g.value)
                } else {
                    (SourceId::new(7), ItemId::new(99), ValueId::new(42))
                }
            })
            .collect();
        let shrunk = cube.retract(&retractions);
        assert_columns_faithful(&shrunk, 3);
        assert_all_engines_agree(&shrunk, "retract");
    }
}
