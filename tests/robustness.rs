//! Failure-injection and adversarial-input tests: the library must stay
//! finite, normalized, and sensible on degenerate inputs — all driven
//! through the unified `TrustPipeline` surface.

use kbt::core::{FusionReport, ModelConfig};
use kbt::datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::{Model, TrustPipeline};

fn obs(e: u32, w: u32, d: u32, v: u32, c: f64) -> Observation {
    Observation {
        extractor: ExtractorId::new(e),
        source: SourceId::new(w),
        item: ItemId::new(d),
        value: ValueId::new(v),
        confidence: c,
    }
}

fn multilayer(observations: Vec<Observation>, cfg: ModelConfig) -> FusionReport {
    TrustPipeline::new()
        .observations(observations)
        .model(Model::MultiLayer(cfg))
        .run()
}

#[test]
fn out_of_range_confidences_are_clamped_not_propagated() {
    let r = multilayer(
        vec![obs(0, 0, 0, 0, 7.5), obs(0, 0, 1, 0, -3.0)],
        ModelConfig::default(),
    );
    for &c in r.correctness().unwrap() {
        assert!(c.is_finite() && (0.0..=1.0).contains(&c));
    }
}

#[test]
fn single_observation_corpus_is_handled() {
    let r = multilayer(vec![obs(0, 0, 0, 0, 1.0)], ModelConfig::default());
    assert!(r.kbt(SourceId::new(0)).is_finite());
    assert!(r
        .posteriors()
        .prob(ItemId::new(0), ValueId::new(0))
        .is_finite());
    let s = TrustPipeline::new()
        .observations(vec![obs(0, 0, 0, 0, 1.0)])
        .model(Model::accu())
        .run();
    assert!(s.kbt(SourceId::new(0)).is_finite());
}

#[test]
fn domain_smaller_than_observed_values_does_not_break_normalization() {
    // n = 2 false values (domain size 3) but 6 distinct values observed:
    // the posterior must still normalize over the observed values.
    let observations = (0..6u32).map(|v| obs(0, v, 0, v, 1.0)).collect();
    let r = multilayer(
        observations,
        ModelConfig {
            n_false_values: 2,
            ..ModelConfig::default()
        },
    );
    let total = r.posteriors().observed_mass(ItemId::new(0));
    assert!(
        (total - 1.0).abs() < 1e-6,
        "observed values exceed domain; total = {total}"
    );
}

#[test]
fn adversarial_unanimous_lie_is_believed_but_finite() {
    // Every source lies identically: the model cannot know better (no
    // external truth), but nothing should blow up and the agreed value
    // must win.
    let mut observations = Vec::new();
    for w in 0..6u32 {
        for e in 0..3u32 {
            observations.push(obs(e, w, 0, 9, 1.0));
        }
    }
    let r = multilayer(observations, ModelConfig::default());
    assert!(r.posteriors().prob(ItemId::new(0), ValueId::new(9)) > 0.9);
    for w in 0..6 {
        assert!(r.kbt(SourceId::new(w)) > 0.5);
    }
}

#[test]
fn extreme_iteration_counts_stay_stable() {
    let mut observations = Vec::new();
    for w in 0..4u32 {
        for d in 0..10u32 {
            observations.push(obs(0, w, d, d % 3, 1.0));
            observations.push(obs(1, w, d, d % 3, 0.6));
        }
    }
    let r = multilayer(
        observations,
        ModelConfig {
            max_iterations: 200,
            convergence_eps: 0.0, // never converge early
            ..ModelConfig::default()
        },
    );
    assert_eq!(r.iterations(), 200);
    assert_eq!(r.trace.rounds.len(), 200, "one trace round per iteration");
    for &a in r.source_trust() {
        assert!(a.is_finite() && (0.0..=1.0).contains(&a));
    }
    let params = &r.as_multi_layer().unwrap().params;
    for e in 0..params.q.len() {
        assert!(
            params.q[e] < params.recall[e] + 1e-9,
            "vote monotonicity must survive 200 iterations"
        );
    }
}

#[test]
fn zero_iteration_budget_returns_defaults() {
    let cfg = ModelConfig {
        max_iterations: 0,
        ..ModelConfig::default()
    };
    let r = multilayer(vec![obs(0, 0, 0, 0, 1.0)], cfg.clone());
    assert_eq!(r.iterations(), 0);
    assert!(!r.converged());
    assert!(r.trace.rounds.is_empty());
    assert_eq!(r.source_trust()[0], cfg.default_source_accuracy);
}

#[test]
fn gold_init_with_extreme_seeds_is_clamped() {
    use kbt::QualityInit;
    let observations = (0..5u32).map(|d| obs(0, 0, d, 0, 1.0)).collect();
    let init = QualityInit::FromGold {
        source_accuracy: vec![Some(1.0)],
        extractor_precision: vec![Some(0.0)],
        extractor_recall: vec![Some(f64::NAN.max(1.0))], // sanitized upstream
    };
    let r = TrustPipeline::new()
        .observations(observations)
        .init(init)
        .run();
    for &a in r.source_trust() {
        assert!(a.is_finite());
    }
    let params = &r.as_multi_layer().unwrap().params;
    for e in 0..params.precision.len() {
        assert!(params.precision[e].is_finite());
        assert!(params.q[e].is_finite());
    }
}

#[test]
fn many_extractors_zero_overlap_does_not_underflow() {
    // 200 extractors each extracting one distinct triple: the literal
    // all-extractors absence sum is ≈ −200·|Abs|; sigmoids must underflow
    // to 0.0 gracefully, not NaN.
    let observations = (0..200u32).map(|e| obs(e, 0, e, 0, 1.0)).collect();
    let r = multilayer(observations, ModelConfig::default());
    for &c in r.correctness().unwrap() {
        assert!(c.is_finite());
    }
    for &t in r.truth_of_group() {
        assert!(t.is_finite());
    }
}
