//! Failure-injection and adversarial-input tests: the library must stay
//! finite, normalized, and sensible on degenerate inputs.

use kbt::core::{ModelConfig, MultiLayerModel, QualityInit, SingleLayerModel};
use kbt::datamodel::{CubeBuilder, ExtractorId, ItemId, Observation, SourceId, ValueId};

fn obs(e: u32, w: u32, d: u32, v: u32, c: f64) -> Observation {
    Observation {
        extractor: ExtractorId::new(e),
        source: SourceId::new(w),
        item: ItemId::new(d),
        value: ValueId::new(v),
        confidence: c,
    }
}

#[test]
fn out_of_range_confidences_are_clamped_not_propagated() {
    let mut b = CubeBuilder::new();
    b.push(obs(0, 0, 0, 0, 7.5));
    b.push(obs(0, 0, 1, 0, -3.0));
    let cube = b.build();
    let r = MultiLayerModel::new(ModelConfig::default()).run(&cube, &QualityInit::Default);
    for &c in &r.correctness {
        assert!(c.is_finite() && (0.0..=1.0).contains(&c));
    }
}

#[test]
fn single_observation_corpus_is_handled() {
    let mut b = CubeBuilder::new();
    b.push(obs(0, 0, 0, 0, 1.0));
    let cube = b.build();
    let r = MultiLayerModel::new(ModelConfig::default()).run(&cube, &QualityInit::Default);
    assert!(r.kbt(SourceId::new(0)).is_finite());
    assert!(r.posteriors.prob(ItemId::new(0), ValueId::new(0)).is_finite());
    let s = SingleLayerModel::default().run(&cube, &QualityInit::Default);
    assert!(s.source_accuracy[0].is_finite());
}

#[test]
fn domain_smaller_than_observed_values_does_not_break_normalization() {
    // n = 2 false values (domain size 3) but 6 distinct values observed:
    // the posterior must still normalize over the observed values.
    let mut b = CubeBuilder::new();
    for v in 0..6u32 {
        b.push(obs(0, v, 0, v, 1.0));
    }
    let cube = b.build();
    let cfg = ModelConfig {
        n_false_values: 2,
        ..ModelConfig::default()
    };
    let r = MultiLayerModel::new(cfg).run(&cube, &QualityInit::Default);
    let total = r.posteriors.observed_mass(ItemId::new(0));
    assert!(
        (total - 1.0).abs() < 1e-6,
        "observed values exceed domain; total = {total}"
    );
}

#[test]
fn adversarial_unanimous_lie_is_believed_but_finite() {
    // Every source lies identically: the model cannot know better (no
    // external truth), but nothing should blow up and the agreed value
    // must win.
    let mut b = CubeBuilder::new();
    for w in 0..6u32 {
        for e in 0..3u32 {
            b.push(obs(e, w, 0, 9, 1.0));
        }
    }
    let cube = b.build();
    let r = MultiLayerModel::new(ModelConfig::default()).run(&cube, &QualityInit::Default);
    assert!(r.posteriors.prob(ItemId::new(0), ValueId::new(9)) > 0.9);
    for w in 0..6 {
        assert!(r.kbt(SourceId::new(w)) > 0.5);
    }
}

#[test]
fn extreme_iteration_counts_stay_stable() {
    let mut b = CubeBuilder::new();
    for w in 0..4u32 {
        for d in 0..10u32 {
            b.push(obs(0, w, d, d % 3, 1.0));
            b.push(obs(1, w, d, d % 3, 0.6));
        }
    }
    let cube = b.build();
    let cfg = ModelConfig {
        max_iterations: 200,
        convergence_eps: 0.0, // never converge early
        ..ModelConfig::default()
    };
    let r = MultiLayerModel::new(cfg).run(&cube, &QualityInit::Default);
    assert_eq!(r.iterations, 200);
    for &a in &r.params.source_accuracy {
        assert!(a.is_finite() && (0.0..=1.0).contains(&a));
    }
    for e in 0..cube.num_extractors() {
        assert!(
            r.params.q[e] < r.params.recall[e] + 1e-9,
            "vote monotonicity must survive 200 iterations"
        );
    }
}

#[test]
fn zero_iteration_budget_returns_defaults() {
    let mut b = CubeBuilder::new();
    b.push(obs(0, 0, 0, 0, 1.0));
    let cube = b.build();
    let cfg = ModelConfig {
        max_iterations: 0,
        ..ModelConfig::default()
    };
    let r = MultiLayerModel::new(cfg.clone()).run(&cube, &QualityInit::Default);
    assert_eq!(r.iterations, 0);
    assert!(!r.converged);
    assert_eq!(r.params.source_accuracy[0], cfg.default_source_accuracy);
}

#[test]
fn gold_init_with_extreme_seeds_is_clamped() {
    let mut b = CubeBuilder::new();
    for d in 0..5u32 {
        b.push(obs(0, 0, d, 0, 1.0));
    }
    let cube = b.build();
    let init = QualityInit::FromGold {
        source_accuracy: vec![Some(1.0)],
        extractor_precision: vec![Some(0.0)],
        extractor_recall: vec![Some(f64::NAN.max(1.0))], // sanitized upstream
    };
    let r = MultiLayerModel::new(ModelConfig::default()).run(&cube, &init);
    for &a in &r.params.source_accuracy {
        assert!(a.is_finite());
    }
    for e in 0..cube.num_extractors() {
        assert!(r.params.precision[e].is_finite());
        assert!(r.params.q[e].is_finite());
    }
}

#[test]
fn many_extractors_zero_overlap_does_not_underflow() {
    // 200 extractors each extracting one distinct triple: the literal
    // all-extractors absence sum is ≈ −200·|Abs|; sigmoids must underflow
    // to 0.0 gracefully, not NaN.
    let mut b = CubeBuilder::new();
    for e in 0..200u32 {
        b.push(obs(e, 0, e, 0, 1.0));
    }
    let cube = b.build();
    let r = MultiLayerModel::new(ModelConfig::default()).run(&cube, &QualityInit::Default);
    for &c in &r.correctness {
        assert!(c.is_finite());
    }
    for &t in &r.truth_of_group {
        assert!(t.is_finite());
    }
}
