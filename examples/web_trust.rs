//! Web-scale scenario: score a simulated slice of the web and contrast
//! Knowledge-Based Trust with PageRank.
//!
//! Generates a KV-style corpus (sites with Zipf page counts, 16 noisy
//! extractors, planted gossip and accurate-tail sites), runs the
//! multi-layer model at website granularity, computes PageRank over an
//! accuracy-independent link graph, and prints the sites where the two
//! signals disagree the most — the paper's Section 5.4.1 story.
//!
//! Run with: `cargo run --release --example web_trust`

use kbt::core::config::AbsencePolicy;
use kbt::core::ModelConfig;
use kbt::datamodel::{CubeBuilder, Observation, SourceId};
use kbt::graph::{
    normalize_unit, pagerank, preferential_attachment, PageRankConfig, WebGraph, WebGraphConfig,
};
use kbt::synth::web::{generate, SiteArchetype, WebCorpusConfig};
use kbt::{Model, TrustPipeline};

fn main() {
    let corpus = generate(&WebCorpusConfig {
        num_sites: 400,
        seed: 7,
        ..WebCorpusConfig::default()
    });

    // Rebuild the cube with websites as sources.
    let mut b = CubeBuilder::with_capacity(corpus.observations.len());
    for o in &corpus.observations {
        b.push(Observation {
            source: SourceId::new(corpus.site_of_page[o.source.index()]),
            ..*o
        });
    }
    b.reserve_ids(corpus.sites.len() as u32, 0, 0, 0);
    let cube = b.build();

    let result = TrustPipeline::new()
        .cube(cube)
        .model(Model::MultiLayer(ModelConfig {
            min_source_support: 5,
            absence_policy: AbsencePolicy::SourceCandidates,
            ..ModelConfig::default()
        }))
        .run();

    // PageRank over a link graph where gossip sites are popular.
    let n = corpus.sites.len();
    let mut edges = preferential_attachment(&WebGraphConfig {
        num_nodes: n,
        edges_per_node: 4,
        seed: 99,
    });
    for (s, site) in corpus.sites.iter().enumerate() {
        if site.archetype == SiteArchetype::Gossip {
            for k in 0..150usize {
                edges.push((((s + 3 * k + 1) % n) as u32, s as u32));
            }
        }
    }
    // Percentile-rank PageRank for comparison: raw scores are power-law
    // distributed, so min–max normalization would squash everything but
    // the top hub to ~0.
    let raw = normalize_unit(&pagerank(
        &WebGraph::from_edges(n, &edges),
        &PageRankConfig::default(),
    ));
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| raw[a].partial_cmp(&raw[b]).unwrap());
    let mut pr = vec![0.0; n];
    for (rank, &s) in order.iter().enumerate() {
        pr[s] = rank as f64 / (n - 1).max(1) as f64;
    }

    // Rank sites by the gap between popularity and trustworthiness.
    let mut scored: Vec<(usize, f64, f64)> = (0..n)
        .filter(|&s| result.active_source()[s])
        .map(|s| (s, result.kbt(SourceId::new(s as u32)), pr[s]))
        .collect();

    scored.sort_by(|a, b| (b.2 - b.1).partial_cmp(&(a.2 - a.1)).unwrap());
    println!("Popular but untrustworthy (PageRank ≫ KBT):");
    for (s, kbt, pr) in scored.iter().take(5) {
        println!(
            "  site {s:4}  KBT {kbt:.2}  PageRank {pr:.2}  [{:?}] true accuracy {:.2}",
            corpus.sites[*s].archetype, corpus.sites[*s].accuracy
        );
    }

    scored.sort_by(|a, b| (b.1 - b.2).partial_cmp(&(a.1 - a.2)).unwrap());
    println!("\nTrustworthy but obscure (KBT ≫ PageRank):");
    for (s, kbt, pr) in scored.iter().take(5) {
        println!(
            "  site {s:4}  KBT {kbt:.2}  PageRank {pr:.2}  [{:?}] true accuracy {:.2}",
            corpus.sites[*s].archetype, corpus.sites[*s].accuracy
        );
    }

    let xs: Vec<f64> = scored.iter().map(|x| x.1).collect();
    let ys: Vec<f64> = scored.iter().map(|x| x.2).collect();
    if let Some(r) = kbt::metrics::pearson(&xs, &ys) {
        println!("\nPearson correlation between KBT and PageRank: {r:.3} (≈ orthogonal)");
    }
}
