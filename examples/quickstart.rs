//! Quickstart: estimate Knowledge-Based Trust for a handful of sources.
//!
//! Builds the paper's own worked example (Table 2: eight webpages and
//! five extractors disagreeing about Barack Obama's nationality), runs
//! the multi-layer model through `TrustPipeline`, and prints the KBT
//! score of every source along with what the model believes about the
//! fact itself.
//!
//! Run with: `cargo run --release --example quickstart`

use kbt::datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::{Model, TrustPipeline};

const VALUES: [&str; 3] = ["USA", "Kenya", "N.America"];

fn main() {
    // The extraction matrix of Table 2: (extractor, webpage, value).
    // W1–W4 truly provide USA; W5–W6 provide Kenya; W7–W8 provide
    // nothing (every extraction from them is an extractor hallucination).
    #[rustfmt::skip]
    let extractions = [
        (0, 0, 0), (1, 0, 0), (2, 0, 0), (3, 0, 0), (4, 0, 1), // W1
        (0, 1, 0), (1, 1, 0), (2, 1, 0), (4, 1, 2),            // W2
        (0, 2, 0), (2, 2, 0), (3, 2, 2),                       // W3
        (0, 3, 0), (2, 3, 0), (3, 3, 1),                       // W4
        (0, 4, 1), (1, 4, 1), (2, 4, 1), (3, 4, 1), (4, 4, 1), // W5
        (0, 5, 1), (2, 5, 1), (3, 5, 0),                       // W6
        (2, 6, 1), (3, 6, 1),                                  // W7
        (4, 7, 1),                                             // W8
    ];

    let item = ItemId::new(0); // (Barack Obama, nationality)
    let result = TrustPipeline::new()
        .observations(
            extractions
                .iter()
                .map(|&(e, w, v)| {
                    Observation::certain(
                        ExtractorId::new(e),
                        SourceId::new(w),
                        item,
                        ValueId::new(v),
                    )
                })
                .collect(),
        )
        .reserve_ids(8, 5, 1, 11)
        .model(Model::multi_layer())
        .run();

    println!("What is Barack Obama's nationality?");
    for (v, name) in VALUES.iter().enumerate() {
        println!(
            "  p(V = {name:9}) = {:.3}",
            result.posteriors().prob(item, ValueId::new(v as u32))
        );
    }

    println!("\nKnowledge-Based Trust per webpage:");
    for w in 0..8u32 {
        println!(
            "  W{}: KBT = {:.3}{}",
            w + 1,
            result.kbt(SourceId::new(w)),
            if result.active_source()[w as usize] {
                ""
            } else {
                "  (too little data; default)"
            }
        );
    }

    let (precision, recall) = (
        result.extractor_precision().unwrap(),
        result.extractor_recall().unwrap(),
    );
    println!("\nExtractor quality estimates (precision / recall):");
    for e in 0..5 {
        println!(
            "  E{}: P = {:.2}, R = {:.2}",
            e + 1,
            precision[e],
            recall[e]
        );
    }
    println!(
        "\nConverged after {} iteration(s): {} (final Δ = {:.2e})",
        result.iterations(),
        result.converged(),
        result.trace.final_delta().unwrap_or(0.0)
    );
}
