//! Granularity tuning: how split-and-merge changes trust estimates.
//!
//! Generates a corpus where most webpages contribute one or two triples —
//! too few to judge a page on its own — and shows how merging pages into
//! their parent website (Section 4) recovers reliable KBT estimates,
//! while splitting keeps any oversized aggregator page from dominating a
//! shard. Both runs go through the same `TrustPipeline`; only the
//! `.granularity(..)` stage differs.
//!
//! Run with: `cargo run --release --example granularity_tuning`

use kbt::core::config::AbsencePolicy;
use kbt::core::ModelConfig;
use kbt::datamodel::SourceId;
use kbt::granularity::SplitMergeConfig;
use kbt::synth::web::{generate, WebCorpusConfig};
use kbt::{Model, TrustPipeline};

fn main() {
    let corpus = generate(&WebCorpusConfig {
        num_sites: 300,
        seed: 123,
        ..WebCorpusConfig::default()
    });
    let cfg = ModelConfig {
        min_source_support: 2,
        absence_policy: AbsencePolicy::SourceCandidates,
        ..ModelConfig::default()
    };

    // --- Finest granularity: every webpage is a source. ---
    let fine = TrustPipeline::new()
        .cube(corpus.cube.clone())
        .model(Model::MultiLayer(cfg.clone()))
        .run();
    let fine_active = fine.active_source().iter().filter(|&&a| a).count();

    // --- Split-and-merge with the paper's defaults m=5, M=10K. ---
    let keys: Vec<_> = corpus
        .observations
        .iter()
        .map(|o| corpus.finest_source_key(o))
        .collect();
    let coarse_run = TrustPipeline::new()
        .observations(corpus.observations.clone())
        .source_keys(move |i, _| keys[i].clone())
        .granularity(SplitMergeConfig {
            min_size: 5,
            max_size: 10_000,
        })
        .model(Model::MultiLayer(cfg))
        .run_detailed();
    let coarse = &coarse_run.report;
    let sources = coarse_run.working_sources.as_deref().unwrap();
    let coarse_active = coarse.active_source().iter().filter(|&&a| a).count();

    println!("Webpage granularity:");
    println!(
        "  {} sources, {} with enough data to score ({:.0}%), coverage {:.3}",
        corpus.cube.num_sources(),
        fine_active,
        100.0 * fine_active as f64 / corpus.cube.num_sources() as f64,
        fine.coverage(),
    );
    println!("After SPLITANDMERGE (m=5, M=10000):");
    println!(
        "  {} working sources, {} scored ({:.0}%), coverage {:.3}",
        sources.len(),
        coarse_active,
        100.0 * coarse_active as f64 / sources.len() as f64,
        coarse.coverage(),
    );

    // Merged working sources borrow statistical strength: compare the
    // estimate error against planted page accuracy for thin pages.
    let mut fine_err = 0.0;
    let mut n_thin = 0usize;
    for p in 0..corpus.cube.num_sources() {
        let size = corpus.cube.source_size(SourceId::new(p as u32));
        if (1..5).contains(&size) && fine.active_source()[p] {
            fine_err += (fine.kbt(SourceId::new(p as u32)) - corpus.page_accuracy[p]).abs();
            n_thin += 1;
        }
    }
    if n_thin > 0 {
        println!(
            "\nMean |KBT error| over {} thin pages scored at page level: {:.3}",
            n_thin,
            fine_err / n_thin as f64
        );
        println!(
            "Merged sources aggregate those pages with their site siblings, \
             so thin pages inherit a site-level estimate instead."
        );
    }
}
