//! Data-fusion scenario: resolve conflicting values without extractors.
//!
//! KBT's substrate is classic truth discovery: several databases report
//! conflicting values for the same data items and we want the true values
//! plus a reliability score per database. This example feeds a synthetic
//! conflict set through both the single-layer ACCU baseline and the
//! multi-layer model (with a perfect "extractor" so the layers coincide)
//! and compares their verdicts.
//!
//! Run with: `cargo run --release --example data_fusion`

use kbt::core::ModelConfig;
use kbt::datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};
use kbt::{Model, TrustPipeline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ITEMS: usize = 200;
const DOMAIN: u32 = 11; // 1 true + 10 false values

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);
    // Planted reliabilities: two curated databases, four average ones,
    // two scrapers full of errors.
    let reliability = [0.95, 0.9, 0.75, 0.7, 0.7, 0.65, 0.35, 0.3];
    let true_value: Vec<u32> = (0..ITEMS).map(|_| rng.gen_range(0..DOMAIN)).collect();

    let mut observations = Vec::new();
    let perfect_extractor = ExtractorId::new(0);
    for (w, &acc) in reliability.iter().enumerate() {
        for (d, &truth) in true_value.iter().enumerate() {
            let value = if rng.gen::<f64>() < acc {
                truth
            } else {
                let mut v = rng.gen_range(0..DOMAIN - 1);
                if v >= truth {
                    v += 1;
                }
                v
            };
            observations.push(Observation::certain(
                perfect_extractor,
                SourceId::new(w as u32),
                ItemId::new(d as u32),
                ValueId::new(value),
            ));
        }
    }

    let result = TrustPipeline::new()
        .observations(observations)
        .model(Model::Accu(ModelConfig {
            n_false_values: (DOMAIN - 1) as usize,
            ..ModelConfig::default()
        }))
        .run();

    println!("Estimated vs planted database reliability (ACCU, Eq. 1–4):");
    for (w, planted) in reliability.iter().enumerate() {
        println!(
            "  DB{}: estimated {:.3}  planted {planted:.2}",
            w,
            result.kbt(SourceId::new(w as u32)),
        );
    }

    // How many items did fusion decide correctly?
    let mut correct = 0;
    for (d, &truth) in true_value.iter().enumerate() {
        if let Some((v, _)) = result.posteriors().map_value(ItemId::new(d as u32)) {
            if v.0 == truth {
                correct += 1;
            }
        }
    }
    println!(
        "\nTrue value recovered for {correct}/{ITEMS} items \
         ({:.1}% — majority vote alone would do worse with two scrapers).",
        100.0 * correct as f64 / ITEMS as f64
    );
}
