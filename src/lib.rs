//! # kbt — Knowledge-Based Trust
//!
//! A full Rust reproduction of *Knowledge-Based Trust: Estimating the
//! Trustworthiness of Web Sources* (Dong, Gabrilovich, Murphy, Dang, Horn,
//! Lugaresi, Sun, Zhang — Google; VLDB 2015, arXiv:1502.03519).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`datamodel`] — triples, ids, interning, the sparse observation cube,
//! * [`core`] — the single-layer (ACCU/POPACCU) baseline and the
//!   multi-layer KBT model with EM inference,
//! * [`granularity`] — the split-and-merge granularity selection,
//! * [`kb`] — the Freebase-like knowledge base, LCWA and type-check gold
//!   labeling,
//! * [`extract`] — the Knowledge-Vault-style extraction simulator,
//! * [`synth`] — synthetic corpora (the paper's §5.2.1 generator and the
//!   KV-scale web corpus),
//! * [`graph`] — web graph + PageRank (the exogenous comparator),
//! * [`flume`] — the FlumeJava-like parallel dataflow engine,
//! * [`metrics`] — SqV/SqC/SqA, WDev, AUC-PR, calibration, coverage,
//! * [`pipeline`] — [`TrustPipeline`], the fluent entry point tying the
//!   stages together,
//! * [`serve`] — the concurrent trust-serving layer: immutable
//!   [`TrustSnapshot`]s published through an epoch-swapped store while a
//!   [`TrustServer`] ingests deltas and refits in the background,
//! * [`store`] — crash-safe persistence for the serving layer: durable
//!   snapshot checkpoints plus a write-ahead delta log, recovered to a
//!   bit-identical epoch by [`DurableTrustServer`],
//! * [`net`] — the network front end: trust queries and streaming
//!   ingestion over the `KBTNET01` length-prefixed wire protocol, served
//!   by a thread-per-connection [`NetServer`].
//!
//! ## The one entry point
//!
//! Most workloads need nothing but [`TrustPipeline`]:
//!
//! ```
//! use kbt::{Model, TrustPipeline};
//! use kbt::datamodel::{ExtractorId, ItemId, Observation, SourceId, ValueId};
//!
//! let obs: Vec<Observation> = (0..3u32)
//!     .map(|w| Observation::certain(
//!         ExtractorId::new(0), SourceId::new(w), ItemId::new(0), ValueId::new(w / 2)))
//!     .collect();
//! let report = TrustPipeline::new()
//!     .observations(obs)
//!     .model(Model::multi_layer())
//!     .run();
//! println!("KBT of W0 = {:.3}", report.kbt(SourceId::new(0)));
//! ```
//!
//! See `examples/quickstart.rs` for a five-minute tour and the README for
//! the migration table from the pre-0.2 per-model API.

pub use kbt_core as core;
pub use kbt_datamodel as datamodel;
pub use kbt_extract as extract;
pub use kbt_flume as flume;
pub use kbt_granularity as granularity;
pub use kbt_graph as graph;
pub use kbt_kb as kb;
pub use kbt_metrics as metrics;
pub use kbt_net as net;
pub use kbt_pipeline as pipeline;
pub use kbt_serve as serve;
pub use kbt_store as store;
pub use kbt_synth as synth;

pub use kbt_core::{
    ConvergenceTrace, FusionModel, FusionReport, IterationTrace, ModelConfig, ModelKind,
    MultiLayerModel, MultiLayerResult, QualityInit, SingleLayerModel, SingleLayerResult,
};
pub use kbt_datamodel::{
    ChunkedCube, ChunkingConfig, CubeBuilder, ExtractorId, FileChunkStore, ItemId, ObservationCube,
    SourceId, ValueId,
};
pub use kbt_net::{NetClient, NetConfig, NetServer, NetShutdown};
pub use kbt_pipeline::{FusionSession, Model, PipelineError, PipelineRun, TrustPipeline};
pub use kbt_serve::{RefitMode, SnapshotReader, SnapshotStore, TrustServer, TrustSnapshot};
pub use kbt_store::{DurableTrustServer, FsyncPolicy, StoreConfig};
