#!/usr/bin/env python3
"""Render the trajectory of every committed bench baseline across git
history — stdlib only, fully offline.

For each ``bench/baselines/BENCH_*.json`` this walks the commits that
touched it (``git log --follow``), reads every historical version with
``git show``, and renders one SVG per report: a line per numeric key,
each normalized to its own [min, max] band so throughput in millions and
wall-clock in milliseconds share one canvas, with first/last values in
the legend. A compact text summary (latest value, change since the first
commit) is printed to stdout for log scraping.

Usage:
    python3 bench/bench_plot.py [--out DIR] [--repo DIR]

``--out`` defaults to ``bench-plots`` (created if missing); ``--repo``
defaults to the working directory and must be a git checkout with full
history (CI uses ``fetch-depth: 0``).
"""

import argparse
import glob
import json
import os
import subprocess
import sys

# Deterministic, colorblind-friendly palette (Okabe-Ito), cycled.
PALETTE = [
    "#0072B2",
    "#E69F00",
    "#009E73",
    "#D55E00",
    "#CC79A7",
    "#56B4E9",
    "#F0E442",
    "#000000",
]

WIDTH, HEIGHT = 960, 420
MARGIN_L, MARGIN_R, MARGIN_T, MARGIN_B = 60, 280, 40, 40


def git(repo, *args):
    out = subprocess.run(
        ["git", "-C", repo, *args],
        check=True,
        stdout=subprocess.PIPE,
        stderr=subprocess.DEVNULL,
    )
    return out.stdout.decode("utf-8", "replace")


def history(repo, path):
    """Oldest-first [(short_hash, {key: value})] for one baseline file."""
    log = git(repo, "log", "--reverse", "--format=%h", "--follow", "--", path)
    points = []
    for commit in log.split():
        try:
            text = git(repo, "show", f"{commit}:{path}")
            data = json.loads(text)
        except (subprocess.CalledProcessError, json.JSONDecodeError):
            continue  # renamed away or unparsable at that commit
        if isinstance(data, dict):
            points.append((commit, data))
    return points


def numeric_series(points):
    """{key: [float|None per commit]} over every key that is ever numeric."""
    keys = []
    for _, data in points:
        for k, v in data.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                if k not in keys:
                    keys.append(k)
    series = {}
    for k in keys:
        row = []
        for _, data in points:
            v = data.get(k)
            row.append(float(v) if isinstance(v, (int, float)) and not isinstance(v, bool) else None)
        series[k] = row
    return series


def fmt(v):
    if v is None:
        return "-"
    if abs(v) >= 1e6:
        return f"{v / 1e6:.2f}M"
    if abs(v) >= 1e3:
        return f"{v / 1e3:.1f}k"
    if v == int(v):
        return str(int(v))
    return f"{v:.3g}"


def svg_for(name, commits, series):
    plot_w = WIDTH - MARGIN_L - MARGIN_R
    plot_h = HEIGHT - MARGIN_T - MARGIN_B
    n = len(commits)
    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" '
        f'viewBox="0 0 {WIDTH} {HEIGHT}" font-family="monospace" font-size="11">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN_L}" y="20" font-size="14" font-weight="bold">{name} '
        f"— {n} commit(s)</text>",
        f'<rect x="{MARGIN_L}" y="{MARGIN_T}" width="{plot_w}" height="{plot_h}" '
        'fill="none" stroke="#ccc"/>',
    ]

    def x(i):
        if n == 1:
            return MARGIN_L + plot_w / 2
        return MARGIN_L + plot_w * i / (n - 1)

    for idx, (key, row) in enumerate(series.items()):
        vals = [v for v in row if v is not None]
        if not vals:
            continue
        lo, hi = min(vals), max(vals)
        span = (hi - lo) or 1.0
        color = PALETTE[idx % len(PALETTE)]

        def y(v):
            return MARGIN_T + plot_h * (1.0 - (v - lo) / span)

        pts = " ".join(
            f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(row) if v is not None
        )
        if len(vals) == 1:
            i = next(i for i, v in enumerate(row) if v is not None)
            out.append(
                f'<circle cx="{x(i):.1f}" cy="{y(vals[0]):.1f}" r="3" fill="{color}"/>'
            )
        else:
            out.append(
                f'<polyline points="{pts}" fill="none" stroke="{color}" stroke-width="1.5"/>'
            )
        ly = MARGIN_T + 14 * idx
        out.append(
            f'<rect x="{WIDTH - MARGIN_R + 10}" y="{ly - 8}" width="10" height="10" fill="{color}"/>'
        )
        out.append(
            f'<text x="{WIDTH - MARGIN_R + 25}" y="{ly}">{key}: '
            f"{fmt(vals[0])} → {fmt(vals[-1])}</text>"
        )

    # First/last commit ticks.
    out.append(
        f'<text x="{MARGIN_L}" y="{HEIGHT - 15}" fill="#666">{commits[0]}</text>'
    )
    if n > 1:
        out.append(
            f'<text x="{MARGIN_L + plot_w}" y="{HEIGHT - 15}" fill="#666" '
            f'text-anchor="end">{commits[-1]}</text>'
        )
    out.append("</svg>")
    return "\n".join(out)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default="bench-plots", help="output directory for SVGs")
    ap.add_argument("--repo", default=".", help="git checkout to read history from")
    args = ap.parse_args()

    baselines = sorted(glob.glob(os.path.join(args.repo, "bench/baselines/BENCH_*.json")))
    if not baselines:
        print("bench_plot: no baselines under bench/baselines/", file=sys.stderr)
        return 1
    os.makedirs(args.out, exist_ok=True)

    wrote = 0
    for path in baselines:
        rel = os.path.relpath(path, args.repo)
        name = os.path.splitext(os.path.basename(path))[0]
        points = history(args.repo, rel)
        if not points:
            print(f"bench_plot: {name}: no readable history, skipped")
            continue
        commits = [c for c, _ in points]
        series = numeric_series(points)
        svg = svg_for(name, commits, series)
        out_path = os.path.join(args.out, f"{name}.svg")
        with open(out_path, "w", encoding="utf-8") as f:
            f.write(svg)
        wrote += 1

        print(f"{name} ({len(commits)} commit(s)):")
        for key, row in series.items():
            vals = [v for v in row if v is not None]
            if not vals:
                continue
            first, last = vals[0], vals[-1]
            if first not in (0, None) and len(vals) > 1:
                delta = f"{(last - first) / abs(first) * 100.0:+.1f}%"
            else:
                delta = "n/a" if len(vals) > 1 else "single point"
            print(f"  {key:<32} {fmt(first):>10} → {fmt(last):>10}  ({delta})")

    print(f"bench_plot: wrote {wrote} SVG(s) to {args.out}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
